// pto::check — seeded-defect coverage (a plain-plain data race, a doomed-read
// leak into a post-abort dereference/store, an over-capacity prefix site must
// each be flagged), zero findings on clean synchronized and tier-1 DS
// workloads, and the observation-only contract: simulated clocks are
// byte-identical with checking on or off.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/check.h"
#include "common/defs.h"
#include "core/prefix.h"
#include "ds/bst/ellen_bst.h"
#include "ds/skiplist/skiplist.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"
#include "sim_util.h"
#include "telemetry/registry.h"

namespace {

using pto::Atom;
using pto::CacheAligned;
using pto::EllenBST;
using pto::SimPlatform;
using pto::SkipList;
namespace sim = pto::sim;
namespace check = pto::check;

/// RAII: enable checking for one test, restore quiet state afterwards.
struct CheckOn {
  CheckOn() {
    check::reset();
    check::set_enabled(true);
  }
  ~CheckOn() {
    check::set_enabled(false);
    check::reset();
  }
};

bool has_kind(const std::vector<check::Finding>& fs, check::FindingKind k) {
  for (const auto& f : fs) {
    if (f.kind == k) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Observation-only: the golden rich workload from test_sim.cpp/test_prof.cpp,
// byte-for-byte the same pinned constants with PTO_CHECK recording enabled.
// If these move, a checker hook charged virtual cycles.
// ---------------------------------------------------------------------------

TEST(Check, DoesNotPerturbGoldenWorkload) {
  CheckOn guard;
  sim::reset_memory();
  sim::Config cfg;
  cfg.seed = 2026;
  cfg.htm.max_duration = 5'000;
  std::vector<CacheAligned<Atom<SimPlatform, std::uint64_t>>> cells(64);
  for (auto& c : cells) c.value.init(0);
  pto::testutil::SimBarrier bar(4);
  auto res = sim::run(4, cfg, [&](unsigned tid) {
    for (int i = 0; i < 300; ++i) {
      auto a = static_cast<unsigned>(sim::rnd() % cells.size());
      auto b = static_cast<unsigned>(sim::rnd() % cells.size());
      if (i % 7 == 0) {
        auto* n = SimPlatform::make<Atom<SimPlatform, std::uint64_t>>();
        n->init(i);
        n->store(n->load(std::memory_order_relaxed) + tid,
                 std::memory_order_relaxed);
        SimPlatform::destroy(n);
      }
      pto::prefix<SimPlatform>(
          2,
          [&] {
            auto v = cells[a].value.load(std::memory_order_relaxed);
            cells[b].value.store(v + tid + 1, std::memory_order_relaxed);
          },
          [&] {
            cells[b].value.fetch_add(tid + 1, std::memory_order_seq_cst);
          });
      if (i == 150) bar.wait();
      sim::op_done();
    }
  });
  auto t = res.totals();
  EXPECT_EQ(res.makespan(), 48945u);
  EXPECT_EQ(t.loads, 1469u);
  EXPECT_EQ(t.stores, 1420u);
  EXPECT_EQ(t.cas_ops, 0u);
  EXPECT_EQ(t.rmws, 16u);
  EXPECT_EQ(t.tx_commits, 1192u);
  EXPECT_EQ(t.total_aborts(), 69u);
  EXPECT_EQ(t.allocs, 172u);
  EXPECT_EQ(t.frees, 172u);
  EXPECT_EQ(t.ops_completed, 1200u);
  EXPECT_EQ(res.uaf_count, 0u);
  // The workload is disciplined: relaxed accesses only inside transactions,
  // synchronized (fetch_add) fallback, thread-private node scribbles.
  EXPECT_EQ(check::finding_count(), 0u);
  // But the checker did observe it.
  auto st = check::stats();
  EXPECT_GT(st.tx_reads_logged, 0u);
  EXPECT_GT(st.sync_ops, 0u);
}

// ---------------------------------------------------------------------------
// On/off identity: the same seeded workload with checking off and then on
// must produce identical simulated clocks and stats.
// ---------------------------------------------------------------------------

TEST(Check, OnOffSimulationIdentical) {
  std::vector<CacheAligned<Atom<SimPlatform, std::uint64_t>>> cells(32);
  auto run_once = [&] {
    sim::reset_memory();
    for (auto& c : cells) c.value.init(0);
    sim::Config cfg;
    cfg.seed = 99;
    return sim::run(4, cfg, [&](unsigned tid) {
      for (int i = 0; i < 400; ++i) {
        auto a = static_cast<unsigned>(sim::rnd() % cells.size());
        auto b = static_cast<unsigned>(sim::rnd() % cells.size());
        pto::prefix<SimPlatform>(
            2,
            [&] {
              auto v = cells[a].value.load(std::memory_order_relaxed);
              cells[b].value.store(v + 1, std::memory_order_seq_cst);
            },
            [&] {
              cells[b].value.fetch_add(tid + 1, std::memory_order_seq_cst);
            },
            pto::StatsHandle(PTO_TELEMETRY_SITE("checktest.op")));
        sim::op_done();
      }
    });
  };
  check::set_enabled(false);
  auto off = run_once();
  {
    CheckOn guard;
    auto on = run_once();
    EXPECT_EQ(off.makespan(), on.makespan());
    EXPECT_EQ(off.clocks, on.clocks);
    auto to = off.totals();
    auto tn = on.totals();
    EXPECT_EQ(to.loads, tn.loads);
    EXPECT_EQ(to.stores, tn.stores);
    EXPECT_EQ(to.tx_commits, tn.tx_commits);
    EXPECT_EQ(to.total_aborts(), tn.total_aborts());
    EXPECT_EQ(to.fences_elided, tn.fences_elided);
    EXPECT_EQ(check::finding_count(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Seeded defect 1: a plain-plain data race. Two threads hammer the same cell
// with relaxed loads and stores and never synchronize — every flavor
// (write-write, read-write, write-read) must surface, attributed to both
// threads. The same workload with seq_cst accesses must be silent.
// ---------------------------------------------------------------------------

TEST(Check, FlagsSeededPlainPlainRace) {
  CheckOn guard;
  sim::reset_memory();
  Atom<SimPlatform, std::uint64_t> cell;
  cell.init(0);
  sim::Config cfg;
  cfg.seed = 11;
  sim::run(2, cfg, [&](unsigned tid) {
    for (int i = 0; i < 50; ++i) {
      auto v = cell.load(std::memory_order_relaxed);
      cell.store(v + tid + 1, std::memory_order_relaxed);
      sim::op_done();
    }
  });
  auto fs = check::findings();
  ASSERT_FALSE(fs.empty());
  EXPECT_TRUE(has_kind(fs, check::FindingKind::kRaceWriteWrite));
  EXPECT_TRUE(has_kind(fs, check::FindingKind::kRaceWriteRead));
  EXPECT_TRUE(has_kind(fs, check::FindingKind::kRaceReadWrite));
  for (const auto& f : fs) {
    EXPECT_EQ(f.addr, reinterpret_cast<std::uintptr_t>(&cell));
    EXPECT_NE(f.tid_a, f.tid_b);
  }
}

TEST(Check, SeqCstVersionOfTheRaceIsSilent) {
  CheckOn guard;
  sim::reset_memory();
  Atom<SimPlatform, std::uint64_t> cell;
  cell.init(0);
  sim::Config cfg;
  cfg.seed = 11;
  sim::run(2, cfg, [&](unsigned tid) {
    for (int i = 0; i < 50; ++i) {
      auto v = cell.load(std::memory_order_seq_cst);
      cell.store(v + tid + 1, std::memory_order_seq_cst);
      sim::op_done();
    }
  });
  EXPECT_EQ(check::finding_count(), 0u);
}

/// Relaxed publication — the classic elision bug on the fallback path: data
/// written plain, then the flag published with a *relaxed* store. No fence
/// means no HB edge from writer to reader through the flag.
TEST(Check, FlagsRelaxedPublication) {
  CheckOn guard;
  sim::reset_memory();
  // Distinct cache lines: findings dedup per line, and the point here is
  // that *both* cells race.
  CacheAligned<Atom<SimPlatform, std::uint64_t>> data_c, flag_c;
  auto& data = data_c.value;
  auto& flag = flag_c.value;
  data.init(0);
  flag.init(0);
  sim::Config cfg;
  cfg.seed = 5;
  sim::run(2, cfg, [&](unsigned tid) {
    if (tid == 0) {
      data.store(42, std::memory_order_relaxed);
      flag.store(1, std::memory_order_relaxed);  // bug: no release
    } else {
      while (flag.load(std::memory_order_relaxed) == 0) sim::cpu_pause();
      (void)data.load(std::memory_order_relaxed);
    }
    sim::op_done();
  });
  auto fs = check::findings();
  ASSERT_FALSE(fs.empty());
  // The data cell (and the flag itself) raced; publication through a relaxed
  // flag creates no edge.
  bool on_data = false;
  for (const auto& f : fs) {
    if (f.addr == reinterpret_cast<std::uintptr_t>(&data)) on_data = true;
  }
  EXPECT_TRUE(on_data);
}

/// The corrected publication (seq_cst store, i.e. store + fence on the
/// simulated machine) is silent: the fence drains the writer's plain store
/// and every load acquires the flag's release history.
TEST(Check, SeqCstPublicationIsSilent) {
  CheckOn guard;
  sim::reset_memory();
  Atom<SimPlatform, std::uint64_t> data;
  Atom<SimPlatform, std::uint64_t> flag;
  data.init(0);
  flag.init(0);
  sim::Config cfg;
  cfg.seed = 5;
  sim::run(2, cfg, [&](unsigned tid) {
    if (tid == 0) {
      data.store(42, std::memory_order_relaxed);
      flag.store(1, std::memory_order_seq_cst);
    } else {
      while (flag.load(std::memory_order_relaxed) == 0) sim::cpu_pause();
      (void)data.load(std::memory_order_relaxed);
    }
    sim::op_done();
  });
  EXPECT_EQ(check::finding_count(), 0u);
}

// ---------------------------------------------------------------------------
// Seeded defect 2: a doomed-read leak. The fast path captures a pointer read
// inside the transaction into an outer local; a concurrent writer dooms the
// transaction; the buggy fallback then dereferences the captured (stale)
// pointer and stores it to a shared cell instead of re-reading. Both flows
// must be flagged; the fixed fallback that re-reads must be silent.
// ---------------------------------------------------------------------------

namespace doomed {

struct Node {
  Atom<SimPlatform, std::uint64_t> payload;
};

struct World {
  Atom<SimPlatform, Node*> head;
  Atom<SimPlatform, std::uint64_t> out;
  std::vector<CacheAligned<Atom<SimPlatform, std::uint64_t>>> scratch;
  World() : scratch(64) {
    for (auto& c : scratch) c.value.init(0);
  }
};

/// tid 0 runs one prefix attempt whose transaction reads head and then
/// lingers on private scratch loads; tid 1 warms up on its own scratch, then
/// stores a new head — dooming tid 0's transaction mid-flight.
template <class Fallback>
void run_scenario(World& w, Fallback&& fallback) {
  sim::Config cfg;
  cfg.seed = 3;
  sim::run(2, cfg, [&](unsigned tid) {
    if (tid == 0) {
      Node* captured = nullptr;
      pto::prefix<SimPlatform>(
          1,
          [&] {
            captured = w.head.load(std::memory_order_relaxed);
            // Keep the transaction open so the writer's store lands inside
            // the speculation window.
            for (int i = 0; i < 64; ++i) {
              (void)w.scratch[i % 32].value.load(std::memory_order_relaxed);
            }
          },
          [&] { fallback(captured); });
    } else {
      for (int i = 0; i < 8; ++i) {
        (void)w.scratch[32 + i % 32].value.load(std::memory_order_relaxed);
      }
      auto* n = SimPlatform::make<Node>();
      n->payload.init(7);
      w.head.store(n, std::memory_order_seq_cst);
    }
    sim::op_done();
  });
}

}  // namespace doomed

TEST(Check, FlagsDoomedReadLeak) {
  CheckOn guard;
  sim::reset_memory();
  doomed::World w;
  auto* first = SimPlatform::make<doomed::Node>();
  first->payload.init(1);
  w.head.init(first);
  w.out.init(0);
  std::uint64_t doomed_payload = 0;
  doomed::run_scenario(w, [&](doomed::Node* captured) {
    // BUG: uses the pointer read by the doomed transaction without
    // re-reading head.
    doomed_payload = captured->payload.load(std::memory_order_seq_cst);
    w.out.store(reinterpret_cast<std::uint64_t>(captured),
                std::memory_order_seq_cst);
  });
  (void)doomed_payload;
  ASSERT_GT(check::stats().doomed_txs, 0u)
      << "scenario must doom the reader's transaction";
  ASSERT_GT(check::stats().poisoned_values, 0u);
  auto fs = check::findings();
  EXPECT_TRUE(has_kind(fs, check::FindingKind::kDoomedAddressUse));
  EXPECT_TRUE(has_kind(fs, check::FindingKind::kDoomedValueStore));
}

TEST(Check, FallbackThatReReadsIsSilent) {
  CheckOn guard;
  sim::reset_memory();
  doomed::World w;
  auto* first = SimPlatform::make<doomed::Node>();
  first->payload.init(1);
  w.head.init(first);
  w.out.init(0);
  doomed::run_scenario(w, [&](doomed::Node* /*captured*/) {
    // Correct fallback: re-read head, then dereference the fresh pointer.
    doomed::Node* fresh = w.head.load(std::memory_order_seq_cst);
    (void)fresh->payload.load(std::memory_order_seq_cst);
    w.out.store(reinterpret_cast<std::uint64_t>(fresh),
                std::memory_order_seq_cst);
  });
  ASSERT_GT(check::stats().doomed_txs, 0u);
  EXPECT_EQ(check::finding_count(), 0u);
}

// ---------------------------------------------------------------------------
// Seeded defect 3: an over-capacity prefix. The fast path writes more
// distinct cache lines than the HTM write-set limit, so every attempt
// capacity-aborts and the site never commits a transaction.
// ---------------------------------------------------------------------------

TEST(Check, FlagsOverCapacityPrefix) {
  CheckOn guard;
  sim::reset_memory();
  constexpr unsigned kLines = 96;  // > HtmConfig::max_write_lines (64)
  std::vector<CacheAligned<Atom<SimPlatform, std::uint64_t>>> cells(kLines);
  for (auto& c : cells) c.value.init(0);
  sim::Config cfg;
  cfg.seed = 17;
  sim::run(1, cfg, [&](unsigned) {
    for (int op = 0; op < 10; ++op) {
      pto::prefix<SimPlatform>(
          1,
          [&] {
            for (unsigned i = 0; i < kLines; ++i) {
              cells[i].value.store(op, std::memory_order_relaxed);
            }
          },
          [&] {
            for (unsigned i = 0; i < kLines; ++i) {
              cells[i].value.fetch_add(1, std::memory_order_seq_cst);
            }
          },
          pto::StatsHandle(PTO_TELEMETRY_SITE("checktest.overcap")));
      sim::op_done();
    }
  });
  auto fs = check::findings();
  ASSERT_TRUE(has_kind(fs, check::FindingKind::kOverCapacity));
  bool found_site = false;
  for (const auto& f : fs) {
    if (f.kind == check::FindingKind::kOverCapacity) {
      EXPECT_EQ(f.site_a, "checktest.overcap");
      EXPECT_GE(f.count, 8u);
      found_site = true;
    }
  }
  EXPECT_TRUE(found_site);
}

/// A site that merely aborts a few times but does commit is not a finding.
TEST(Check, CommittingSiteIsNotOverCapacity) {
  CheckOn guard;
  sim::reset_memory();
  std::vector<CacheAligned<Atom<SimPlatform, std::uint64_t>>> cells(8);
  for (auto& c : cells) c.value.init(0);
  sim::Config cfg;
  cfg.seed = 17;
  sim::run(1, cfg, [&](unsigned) {
    for (int op = 0; op < 100; ++op) {
      pto::prefix<SimPlatform>(
          1,
          [&] { cells[op % 8].value.store(op, std::memory_order_relaxed); },
          [&] { cells[op % 8].value.fetch_add(1, std::memory_order_seq_cst); },
          pto::StatsHandle(PTO_TELEMETRY_SITE("checktest.fits")));
      sim::op_done();
    }
  });
  EXPECT_FALSE(
      has_kind(check::findings(), check::FindingKind::kOverCapacity));
}

// ---------------------------------------------------------------------------
// Clean tier-1 DS workloads: the contended EllenBST + SkipList mix from the
// profiler tests (seed 2027, 8 vthreads) must report zero findings — the
// library's fast paths are transactional and its fallbacks synchronize.
// ---------------------------------------------------------------------------

TEST(Check, CleanDataStructureWorkloadZeroFindings) {
  CheckOn guard;
  sim::reset_memory();

  using Mode = EllenBST<SimPlatform>::Mode;
  constexpr int kRange = 64;
  auto* tree = new EllenBST<SimPlatform>();
  auto* skip = new SkipList<SimPlatform>();
  {
    auto ctx = tree->make_ctx();
    for (int i = 0; i < kRange / 2; ++i) {
      tree->insert(ctx, (i * 7) % kRange, Mode::kLockfree);
    }
  }
  {
    auto ctx = skip->make_ctx();
    for (int i = 0; i < kRange / 2; ++i) {
      skip->insert_lf(ctx, (i * 5) % kRange);
    }
  }

  sim::Config cfg;
  cfg.seed = 2027;
  sim::run(8, cfg, [&](unsigned tid) {
    if (tid % 2 == 0) {
      auto ctx = tree->make_ctx();
      for (int i = 0; i < 500; ++i) {
        auto k = static_cast<std::int64_t>(sim::rnd() % kRange);
        if (sim::rnd() % 2 == 0) {
          tree->insert(ctx, k, Mode::kPto12);
        } else {
          tree->remove(ctx, k, Mode::kPto12);
        }
        sim::op_done();
      }
    } else {
      auto ctx = skip->make_ctx();
      for (int i = 0; i < 500; ++i) {
        auto k = static_cast<std::int64_t>(sim::rnd() % kRange);
        if (sim::rnd() % 2 == 0) {
          skip->insert_pto(ctx, k);
        } else {
          skip->remove_pto(ctx, k);
        }
        sim::op_done();
      }
    }
  });

  // The workload must actually conflict and doom transactions, or the
  // doomed-read half of the checker saw nothing worth testing.
  auto st = check::stats();
  EXPECT_GT(st.doomed_txs, 0u);
  if (check::finding_count() != 0) {
    check::report(std::cerr, /*full=*/true);
  }
  EXPECT_EQ(check::finding_count(), 0u);

  delete tree;
  delete skip;
  sim::reset_memory();
}

}  // namespace
