// Exploration effectiveness: this binary is only built with
// -DPTO_SEEDED_BUGS=ON, which re-introduces two historical defects:
//
//   1. EllenBST Clean-Info leak — help_delete no longer retires the Info
//      record displaced by its winning mark CAS, so every lock-free-path
//      delete leaks one allocation. Detected as an alloc/free imbalance
//      after the tree is drained and epochs are flushed.
//   2. MSQueue unpublished store — the PTO fallback enqueue links its node
//      with a blind store instead of the publishing CAS, so two fallback
//      enqueues racing in the load-next/store window silently drop a node.
//      Schedule- and fault-dependent (needs tx aborts to force two threads
//      into the fallback together): detected as a conservation violation.
//
// Each test sweeps explored schedules and asserts the defect is FOUND
// within 64 seeds — the acceptance criterion for the exploration suite.
// If these tests fail, exploration lost its teeth; do not weaken them.
#include <gtest/gtest.h>

#ifndef PTO_SEEDED_BUGS
#error "test_seeded_bugs.cpp must be compiled with PTO_SEEDED_BUGS"
#endif

#include <algorithm>
#include <vector>

#include "ds/bst/ellen_bst.h"
#include "ds/queue/ms_queue.h"
#include "explore/explore.h"
#include "explore_util.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

namespace {

using pto::SimPlatform;
namespace sim = pto::sim;
namespace xp = pto::explore;
namespace tu = pto::testutil;

constexpr unsigned kSeedBudget = 64;

TEST(SeededBugs, BstCleanInfoLeakFound) {
  // The leak is one Info record per lock-free delete, so a drain workload
  // plus forced reclamation leaves a large alloc/free imbalance. Sweep the
  // seed budget anyway (the fixture contract is "found within 64 seeds",
  // not "found deterministically").
  bool found = false;
  unsigned seeds_tried = 0;
  for (const xp::Options& x :
       tu::sweep_policies(tu::test_seed(53), kSeedBudget / 2, 0.02)) {
    ++seeds_tried;
    PTO_TRACE_EXPLORE(x);
    constexpr unsigned kThreads = 2;
    constexpr std::int64_t kKeys = 40;
    constexpr int kRounds = 3;
    pto::EllenBST<SimPlatform> s;
    std::vector<typename pto::EllenBST<SimPlatform>::ThreadCtx> ctxs;
    for (unsigned t = 0; t < kThreads; ++t) ctxs.push_back(s.make_ctx());
    sim::Config cfg;
    cfg.seed = tu::test_seed(53);
    cfg.explore = x;
    using Mode = pto::EllenBST<SimPlatform>::Mode;
    auto res = sim::run(kThreads, cfg, [&](unsigned tid) {
      std::int64_t lo = static_cast<std::int64_t>(tid) * kKeys;
      for (int r = 0; r < kRounds; ++r) {
        for (std::int64_t k = lo; k < lo + kKeys; ++k) {
          s.insert(ctxs[tid], k, static_cast<Mode>(0));
        }
        for (std::int64_t k = lo; k < lo + kKeys; ++k) {
          s.remove(ctxs[tid], k, static_cast<Mode>(0));
        }
      }
      // Tree drained: flush retirement backlogs so the only allocations
      // still live are sentinels and whatever leaked.
      for (int i = 0; i < 8; ++i) ctxs[tid].epoch.reclaim_some();
    });
    auto tot = res.totals();
    std::uint64_t live = tot.allocs - tot.frees;
    // Without the leak this ends well under the per-round delete count;
    // with it, >= one Info per delete (2 threads * 3 rounds * 40 keys).
    if (live > kThreads * kRounds * kKeys / 2) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "BST Clean-Info leak not detected within "
                     << seeds_tried << " explored seeds";
}

TEST(SeededBugs, QueueUnpublishedStoreFound) {
  // Needs two threads inside the fallback enqueue's load-next/store window
  // at once, which in turn needs fault-injected aborts to push enqueues off
  // the transactional path — pure schedule+fault exploration.
  bool found = false;
  unsigned seeds_tried = 0;
  for (const xp::Options& x :
       tu::sweep_policies(tu::test_seed(59), kSeedBudget / 2, 0.3)) {
    ++seeds_tried;
    PTO_TRACE_EXPLORE(x);
    constexpr unsigned kThreads = 4;
    constexpr int kPerThread = 40;
    // One tx attempt before falling back: with the fault injector active
    // most enqueues take the racy fallback, so the window gets exercised.
    const pto::PrefixPolicy kTight{1};
    pto::MSQueue<SimPlatform> q;
    std::vector<typename pto::MSQueue<SimPlatform>::ThreadCtx> ctxs;
    for (unsigned t = 0; t < kThreads; ++t) ctxs.push_back(q.make_ctx());
    sim::Config cfg;
    cfg.seed = tu::test_seed(59);
    cfg.explore = x;
    sim::run(kThreads, cfg, [&](unsigned tid) {
      for (int i = 0; i < kPerThread; ++i) {
        q.enqueue_pto(ctxs[tid], static_cast<std::int64_t>(tid) * 10000 + i,
                      kTight);
      }
    });
    // Check conservation: a lost link drops at least one node (and strands
    // every later enqueue on the lost branch). Count via the null-terminated
    // head walk first — when nodes were lost, tail_ is stranded off the head
    // chain and the lock-free dequeue's head==tail ⟺ next==null invariant no
    // longer holds, so draining through it would crash rather than report.
    std::size_t reachable = 0;
    std::vector<std::int64_t> got;
    sim::Config drain_cfg;
    drain_cfg.seed = 1;
    sim::run(1, drain_cfg, [&](unsigned) {
      reachable = q.size_slow();
      if (reachable != kThreads * kPerThread) return;
      while (auto v = q.dequeue_pto(ctxs[0])) got.push_back(*v);
    });
    if (reachable != kThreads * kPerThread) {
      found = true;  // lost elements
      break;
    }
    std::sort(got.begin(), got.end());
    std::vector<std::int64_t> want;
    for (std::int64_t t = 0; t < kThreads; ++t) {
      for (int i = 0; i < kPerThread; ++i) want.push_back(t * 10000 + i);
    }
    if (got != want) {
      found = true;  // right count, wrong multiset
      break;
    }
  }
  EXPECT_TRUE(found) << "MSQueue unpublished-store defect not detected within "
                     << seeds_tried << " explored seeds";
}

}  // namespace
