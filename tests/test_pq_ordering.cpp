// Priority-queue ordering semantics under concurrency, for both the Mound
// and the SkipQueue: in a pop-only phase the global linearization of
// extract-min calls yields an ascending value sequence, so every thread's
// *local* pop subsequence must ascend too — a property plain value
// conservation cannot catch (it would accept popping max-first).
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "ds/mound/mound.h"
#include "ds/skiplist/skipqueue.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"
#include "sim_util.h"

namespace {

using pto::Mound;
using pto::SimPlatform;
using pto::SkipQueue;

enum class Mode { kLf, kPto };
const char* mode_name(Mode m) { return m == Mode::kLf ? "lf" : "pto"; }

class MoundPhased : public ::testing::TestWithParam<std::tuple<Mode, int>> {};

TEST_P(MoundPhased, PopOnlyPhaseAscendsPerThread) {
  auto [mode, seed] = GetParam();
  constexpr unsigned kThreads = 6;
  constexpr int kPerThread = 150;
  Mound<SimPlatform> q(12);
  pto::testutil::SimBarrier bar(kThreads);
  std::vector<std::vector<std::int32_t>> pops(kThreads);
  std::multiset<std::int32_t> pushed_all;  // filled pre-run, host side

  pto::sim::Config cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto res = pto::sim::run(kThreads, cfg, [&](unsigned tid) {
    auto ctx = q.make_ctx();
    // Phase 1: concurrent pushes.
    for (int i = 0; i < kPerThread; ++i) {
      auto v = static_cast<std::int32_t>(pto::sim::rnd() % 100000);
      if (mode == Mode::kLf) {
        q.insert_lf(ctx, v);
      } else {
        q.insert_pto(ctx, v);
      }
      pops[tid].push_back(-1);  // placeholder keeps vectors warm
    }
    pops[tid].clear();
    bar.wait();
    // Phase 2: pop-only. Each thread's sequence must ascend.
    for (;;) {
      auto got = (mode == Mode::kLf) ? q.extract_min_lf(ctx)
                                     : q.extract_min_pto(ctx);
      if (!got.has_value()) break;
      pops[tid].push_back(*got);
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);

  std::size_t total = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::size_t i = 1; i < pops[t].size(); ++i) {
      ASSERT_LE(pops[t][i - 1], pops[t][i])
          << "thread " << t << " popped out of order at index " << i;
    }
    total += pops[t].size();
  }
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_EQ(q.size_slow(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MoundPhased,
                         ::testing::Combine(::testing::Values(Mode::kLf,
                                                              Mode::kPto),
                                            ::testing::Values(1, 2, 3)),
                         [](const auto& info) {
                           return std::string(mode_name(
                                      std::get<0>(info.param))) +
                                  "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

class SkipQPhased : public ::testing::TestWithParam<std::tuple<Mode, int>> {};

TEST_P(SkipQPhased, PopOnlyPhaseAscendsPerThread) {
  auto [mode, seed] = GetParam();
  constexpr unsigned kThreads = 6;
  constexpr int kPerThread = 150;
  SkipQueue<SimPlatform> q;
  pto::testutil::SimBarrier bar(kThreads);
  std::vector<std::vector<std::int32_t>> pops(kThreads);

  pto::sim::Config cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto res = pto::sim::run(kThreads, cfg, [&](unsigned tid) {
    auto ctx = q.make_ctx();
    for (int i = 0; i < kPerThread; ++i) {
      auto v = static_cast<std::int32_t>(pto::sim::rnd() % 100000);
      if (mode == Mode::kLf) {
        q.push_lf(ctx, v);
      } else {
        q.push_pto(ctx, v);
      }
    }
    bar.wait();
    for (;;) {
      auto got = (mode == Mode::kLf) ? q.pop_min_lf(ctx)
                                     : q.pop_min_pto(ctx);
      if (!got.has_value()) break;
      pops[tid].push_back(*got);
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);

  std::size_t total = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::size_t i = 1; i < pops[t].size(); ++i) {
      ASSERT_LE(pops[t][i - 1], pops[t][i])
          << "thread " << t << " popped out of order at index " << i;
    }
    total += pops[t].size();
  }
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SkipQPhased,
                         ::testing::Combine(::testing::Values(Mode::kLf,
                                                              Mode::kPto),
                                            ::testing::Values(1, 2, 3)),
                         [](const auto& info) {
                           return std::string(mode_name(
                                      std::get<0>(info.param))) +
                                  "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

// Alternating push/pop storm: at every quiescent point between phases the
// minimum popped next must be the global minimum of what remains.
TEST(PqOrdering, MoundPhaseMinimumIsGlobalMinimum) {
  constexpr unsigned kThreads = 4;
  Mound<SimPlatform> q(12);
  pto::testutil::SimBarrier bar(kThreads);
  std::vector<std::multiset<std::int32_t>> pushed(kThreads);
  std::vector<std::multiset<std::int32_t>> popped(kThreads);
  pto::sim::Config cfg;
  cfg.seed = 77;
  pto::sim::run(kThreads, cfg, [&](unsigned tid) {
    auto ctx = q.make_ctx();
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 30; ++i) {
        auto v = static_cast<std::int32_t>(pto::sim::rnd() % 100000);
        q.insert_pto(ctx, v);
        pushed[tid].insert(v);
      }
      bar.wait();
      if (tid == 0) {
        // Quiescent: the next pop must equal the global remaining minimum.
        std::multiset<std::int32_t> remaining;
        for (unsigned t = 0; t < kThreads; ++t) {
          for (auto v : pushed[t]) remaining.insert(v);
        }
        for (unsigned t = 0; t < kThreads; ++t) {
          for (auto v : popped[t]) {
            auto it = remaining.find(v);
            ASSERT_NE(it, remaining.end()) << "popped value never pushed";
            remaining.erase(it);
          }
        }
        auto got = q.extract_min_lf(ctx);
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, *remaining.begin());
        popped[0].insert(*got);
      }
      bar.wait();
      for (int i = 0; i < 15; ++i) {
        auto got = q.extract_min_pto(ctx);
        if (got.has_value()) popped[tid].insert(*got);
      }
      bar.wait();
    }
  });
  // Conservation across the whole run.
  std::multiset<std::int32_t> all_pushed, all_popped;
  for (unsigned t = 0; t < kThreads; ++t) {
    all_pushed.insert(pushed[t].begin(), pushed[t].end());
    all_popped.insert(popped[t].begin(), popped[t].end());
  }
  auto ctx = q.make_ctx();
  while (auto got = q.extract_min_lf(ctx)) all_popped.insert(*got);
  EXPECT_EQ(all_pushed, all_popped);
}

}  // namespace
