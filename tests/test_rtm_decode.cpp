// RTM abort-status decoding: every _XABORT_* bit combination must land in
// the intended txcode bucket, both at the decoder level (exhaustive sweep
// over all 64 low-bit patterns x abort codes) and end-to-end through
// prefix()'s accounting via a fake platform that replays synthetic status
// words the way the RTM backend does. Runs on any machine — the decoder is a
// pure function of the ISA-defined word (htm/rtm_status.h); when TSX is
// compiled in, htm.h additionally static_asserts the bit mirror.
#include <gtest/gtest.h>

#include <csetjmp>
#include <cstdint>
#include <vector>

#include "core/prefix.h"
#include "htm/rtm_status.h"
#include "htm/txcode.h"

namespace {

using namespace pto;        // NOLINT: TX_* codes
using namespace pto::htm;   // NOLINT: kRtm* bits

// The intended mapping, written as an explicit per-bit decision table (not a
// copy of the decoder's if-chain) so the test pins DESIGN, not implementation.
unsigned intended_bucket(unsigned status) {
  const bool explicit_ = status & kRtmExplicit;
  const bool retry = status & kRtmRetry;
  const bool conflict = status & kRtmConflict;
  const bool capacity = status & kRtmCapacity;
  const bool debug = status & kRtmDebug;
  // Priority: the program's own abort wins; then deterministic resource
  // exhaustion; then contention; then tooling traps; a lone RETRY is the
  // hardware's transient/spurious signal; no bits set = no information.
  if (explicit_) return TX_ABORT_EXPLICIT;
  if (capacity) return TX_ABORT_CAPACITY;
  if (conflict) return TX_ABORT_CONFLICT;
  if (debug) return TX_ABORT_OTHER;
  if (retry) return TX_ABORT_SPURIOUS;
  return TX_ABORT_OTHER;
}

TEST(RtmDecode, ExhaustiveOverAllBitCombinations) {
  for (unsigned bits = 0; bits < 64; ++bits) {  // all combos of bits 0..5
    for (unsigned code : {0u, 1u, 0x42u, 0xffu}) {
      const unsigned status = bits | (code << 24);
      const unsigned got = decode_rtm_status(status);
      EXPECT_EQ(got, intended_bucket(status))
          << "status=0x" << std::hex << status;
      // Decoded buckets must be valid abort causes (never TX_STARTED, never
      // out of the stats-array range).
      EXPECT_GE(got, 1u);
      EXPECT_LT(got, kTxCodeCount);
      if (bits & kRtmExplicit) {
        EXPECT_EQ(rtm_abort_code(status), code)
            << "user payload must survive in bits 24-31";
      }
    }
  }
}

TEST(RtmDecode, SpotChecksMatchSdmSemantics) {
  // Single bits.
  EXPECT_EQ(decode_rtm_status(kRtmExplicit), TX_ABORT_EXPLICIT);
  EXPECT_EQ(decode_rtm_status(kRtmConflict), TX_ABORT_CONFLICT);
  EXPECT_EQ(decode_rtm_status(kRtmCapacity), TX_ABORT_CAPACITY);
  EXPECT_EQ(decode_rtm_status(kRtmDebug), TX_ABORT_OTHER);
  EXPECT_EQ(decode_rtm_status(kRtmRetry), TX_ABORT_SPURIOUS);
  // Status 0: page fault / syscall inside the tx — no information.
  EXPECT_EQ(decode_rtm_status(0), TX_ABORT_OTHER);
  // The common hardware combos.
  EXPECT_EQ(decode_rtm_status(kRtmConflict | kRtmRetry), TX_ABORT_CONFLICT)
      << "retryable conflict is still a conflict";
  EXPECT_EQ(decode_rtm_status(kRtmCapacity | kRtmConflict), TX_ABORT_CAPACITY)
      << "capacity wins: retrying it is wasted work";
  EXPECT_EQ(decode_rtm_status(kRtmExplicit | kRtmRetry | (7u << 24)),
            TX_ABORT_EXPLICIT);
}

TEST(RtmDecode, NestedBitNeverChangesTheBucket) {
  for (unsigned bits = 0; bits < 64; ++bits) {
    if (bits & kRtmNested) continue;
    EXPECT_EQ(decode_rtm_status(bits | kRtmNested), decode_rtm_status(bits))
        << "bits=0x" << std::hex << bits;
  }
}

TEST(RtmDecode, AbortCodeExtractsAllByteValues) {
  for (unsigned code = 0; code <= 0xff; ++code) {
    const unsigned status = kRtmExplicit | kRtmRetry | (code << 24);
    EXPECT_EQ(rtm_abort_code(status), static_cast<unsigned char>(code));
  }
}

// ---------------------------------------------------------------------------
// End to end: synthetic status words -> prefix() bucket accounting.
// ---------------------------------------------------------------------------

/// Platform whose tx_begin replays scripted raw RTM status words through
/// decode_rtm_status — exactly what htm.h does on the RTM path — then starts
/// for real once the script is exhausted. Single-threaded by design.
struct FakeRtmPlatform {
  static inline std::vector<unsigned> script;  // raw EAX words, front first
  static inline std::size_t cursor = 0;
  static inline bool active = false;
  static inline std::jmp_buf env;

  static void load(std::vector<unsigned> s) {
    script = std::move(s);
    cursor = 0;
    active = false;
  }
  static bool in_tx() { return active; }
  static std::jmp_buf& tx_checkpoint() { return env; }
  static unsigned tx_begin() {
    if (cursor < script.size()) return decode_rtm_status(script[cursor++]);
    active = true;
    return TX_STARTED;
  }
  static void tx_end() { active = false; }
};

TEST(RtmDecodePrefix, EveryCombinationLandsInItsStatsBucket) {
  for (unsigned bits = 0; bits < 64; ++bits) {
    const unsigned status = bits | (0x21u << 24);
    const unsigned want = intended_bucket(status);
    FakeRtmPlatform::load({status});
    PrefixStats st;
    prefix<FakeRtmPlatform>(PrefixPolicy(4), [] {}, [] {}, &st);
    EXPECT_EQ(st.aborts[want], 1u) << "status=0x" << std::hex << status;
    EXPECT_EQ(st.total_aborts(), 1u) << "exactly one bucket per abort";
    // Non-retryable causes break to the fallback; transient ones retry and
    // the exhausted script then commits.
    if (want == TX_ABORT_EXPLICIT || want == TX_ABORT_CAPACITY) {
      EXPECT_EQ(st.fallbacks, 1u);
      EXPECT_EQ(st.commits, 0u);
      EXPECT_EQ(st.attempts, 1u);
    } else {
      EXPECT_EQ(st.fallbacks, 0u);
      EXPECT_EQ(st.commits, 1u);
      EXPECT_EQ(st.attempts, 2u);
    }
  }
}

TEST(RtmDecodePrefix, MixedAbortStreamAccumulatesPerCause) {
  // conflict|retry, lone retry, capacity -> buckets 1, 5, then break.
  FakeRtmPlatform::load({kRtmConflict | kRtmRetry, kRtmRetry, kRtmCapacity});
  PrefixStats st;
  prefix<FakeRtmPlatform>(PrefixPolicy(10), [] {}, [] {}, &st);
  EXPECT_EQ(st.aborts[TX_ABORT_CONFLICT], 1u);
  EXPECT_EQ(st.aborts[TX_ABORT_SPURIOUS], 1u);
  EXPECT_EQ(st.aborts[TX_ABORT_CAPACITY], 1u);
  EXPECT_EQ(st.attempts, 3u);
  EXPECT_EQ(st.fallbacks, 1u) << "capacity abort must stop the retry loop";
}

TEST(RtmDecodePrefix, RetryOnCapacityPolicyKeepsAttempting) {
  FakeRtmPlatform::load({kRtmCapacity, kRtmCapacity | kRtmConflict});
  PrefixPolicy pol(5);
  pol.retry_on_capacity = true;
  PrefixStats st;
  prefix<FakeRtmPlatform>(pol, [] {}, [] {}, &st);
  EXPECT_EQ(st.aborts[TX_ABORT_CAPACITY], 2u);
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.fallbacks, 0u);
}

}  // namespace
