// Differential tests for the sharded KV service (src/service/shard.h), in
// three tiers, parameterized over shards x threads x key skew x structure:
//
//   1. Single-thread exact — one client replays a loadgen stream and every
//      result must equal the STL set oracle's; final size and invariants
//      must match too. Catches routing bugs (an op applied to the wrong
//      shard changes some result).
//   2. Concurrent conservation — real threads run independent clients;
//      afterwards every key's net insert count across threads must be 0 or 1
//      and equal final membership, and the aggregate size must equal
//      sum(puts_ok - dels_ok). Catches lost or double-applied updates.
//   3. Sampled-key locked oracle — a small sampled key set is protected by a
//      mutex held around BOTH the service op and the oracle op, making the
//      oracle exact for those keys even mid-concurrency (sound because set
//      semantics are per-key independent: ops on other keys can't affect a
//      sampled key's membership). Every sampled-key result is compared
//      op-by-op while unrelated traffic hammers the same shards.
//
// The SvcDifferentialNative suite runs on real threads (and under the ASan/
// TSan CI legs — the "Native" suite-name token is what the TSan job's
// `ctest -R Native` selects). The SvcSimTwin suite replays the same
// WorkloadSpec type under simx virtual threads, where scheduling is
// deterministic: two identical runs must produce identical final state AND
// identical simulated makespans.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "service/loadgen.h"
#include "service/shard.h"
#include "sim/sim.h"

#if defined(__SANITIZE_THREAD__)
#define PTO_SVC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PTO_SVC_TSAN 1
#endif
#endif

namespace {

using pto::NativePlatform;
using pto::SimPlatform;
namespace svc = pto::service;
namespace sim = pto::sim;

#if defined(PTO_SVC_TSAN)
constexpr std::uint64_t kOpsPerThread = 1500;  // TSan: ~20x slowdown
#else
constexpr std::uint64_t kOpsPerThread = 8000;
#endif

struct Config {
  unsigned shards;
  unsigned threads;
  svc::Dist dist;
  double theta;
  svc::Structure structure;
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  std::string n = std::string(svc::structure_name(c.structure)) + "_sh" +
                  std::to_string(c.shards) + "t" + std::to_string(c.threads) +
                  "_" + svc::dist_name(c.dist);
  if (c.dist == svc::Dist::kZipf) {
    n += std::to_string(static_cast<int>(c.theta * 100));
  }
  return n;
}

svc::WorkloadSpec spec_of(const Config& c, std::uint64_t keyspace,
                          std::uint64_t seed) {
  svc::WorkloadSpec spec;
  spec.keyspace = keyspace;
  spec.dist = c.dist;
  spec.theta = c.theta;
  spec.get_pct = 30;  // update-heavy: differentials want state churn
  spec.put_pct = 40;
  spec.seed = seed;
  return spec;
}

/// Oracle step sharing the loadgen's op encoding.
bool oracle_exec(std::set<std::int64_t>& oracle, const svc::Op& op) {
  switch (op.kind) {
    case svc::OpKind::kGet: return oracle.count(op.key) == 1;
    case svc::OpKind::kPut: return oracle.insert(op.key).second;
    case svc::OpKind::kDel: return oracle.erase(op.key) == 1;
  }
  return false;
}

// Tier bodies are templated on the adapter so each case runs the structure
// the config names; dispatch() erases that template into the TEST_P bodies.
template <class A>
void run_single_thread_exact(const Config& c, A adapter) {
  using KV = svc::ShardedKV<NativePlatform, A>;
  KV kv(c.shards, adapter);
  auto client = kv.make_client();
  svc::OpStream stream(spec_of(c, 512, 0xD1FF));
  std::vector<svc::Op> ops;
  stream.fill(0, kOpsPerThread, ops);

  std::set<std::int64_t> oracle;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const bool got = client.exec(ops[i]);
    const bool want = oracle_exec(oracle, ops[i]);
    ASSERT_EQ(got, want) << "op " << i << " kind "
                         << static_cast<int>(ops[i].kind) << " key "
                         << ops[i].key;
  }
  EXPECT_EQ(kv.size_slow(), oracle.size());
  EXPECT_TRUE(kv.check_invariants());
}

template <class A>
void run_concurrent_conservation(const Config& c, A adapter) {
  using KV = svc::ShardedKV<NativePlatform, A>;
  constexpr std::uint64_t kKeys = 256;
  KV kv(c.shards, adapter);
  const svc::OpStream stream(spec_of(c, kKeys, 0xC0513));

  std::vector<std::vector<int>> net(c.threads, std::vector<int>(kKeys, 0));
  std::vector<std::uint64_t> puts_ok(c.threads, 0), dels_ok(c.threads, 0);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < c.threads; ++t) {
    threads.emplace_back([&, t] {
      auto client = kv.make_client();
      std::vector<svc::Op> ops;
      stream.fill(t, kOpsPerThread, ops);
      for (const svc::Op& op : ops) {
        const auto k = static_cast<std::size_t>(op.key);
        switch (op.kind) {
          case svc::OpKind::kGet: client.get(op.key); break;
          case svc::OpKind::kPut: net[t][k] += client.put(op.key); break;
          case svc::OpKind::kDel: net[t][k] -= client.del(op.key); break;
        }
      }
      puts_ok[t] = client.puts_ok;
      dels_ok[t] = client.dels_ok;
    });
  }
  for (auto& th : threads) th.join();

  auto check = kv.make_client();
  std::size_t expect_size = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    int total = 0;
    for (const auto& v : net) total += v[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(check.get(static_cast<std::int64_t>(k)), total == 1)
        << "key " << k;
    expect_size += static_cast<std::size_t>(total);
  }
  EXPECT_EQ(kv.size_slow(), expect_size);
  // Aggregate conservation — the counters the stress/bench tier relies on.
  std::uint64_t puts = 0, dels = 0;
  for (unsigned t = 0; t < c.threads; ++t) {
    puts += puts_ok[t];
    dels += dels_ok[t];
  }
  EXPECT_EQ(kv.size_slow(), static_cast<std::size_t>(puts - dels));
  EXPECT_TRUE(kv.check_invariants());
}

template <class A>
void run_sampled_key_oracle(const Config& c, A adapter) {
  using KV = svc::ShardedKV<NativePlatform, A>;
  constexpr std::uint64_t kKeys = 256;
  // Keys [0, 8) are the sampled set — under zipf these are also the hottest
  // keys, so the locked differential sees the most contended traffic.
  constexpr std::int64_t kSampled = 8;
  KV kv(c.shards, adapter);
  const svc::OpStream stream(spec_of(c, kKeys, 0x5A3D));

  std::mutex mu;
  std::set<std::int64_t> oracle;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> sampled_ops{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < c.threads; ++t) {
    threads.emplace_back([&, t] {
      auto client = kv.make_client();
      std::vector<svc::Op> ops;
      stream.fill(t, kOpsPerThread, ops);
      for (const svc::Op& op : ops) {
        if (op.key < kSampled) {
          std::lock_guard<std::mutex> lk(mu);
          const bool got = client.exec(op);
          const bool want = oracle_exec(oracle, op);
          if (got != want) mismatches.fetch_add(1);
          sampled_ops.fetch_add(1, std::memory_order_relaxed);
        } else {
          client.exec(op);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(sampled_ops.load(), 0u) << "sample set never hit - test is vacuous";
  auto check = kv.make_client();
  for (std::int64_t k = 0; k < kSampled; ++k) {
    EXPECT_EQ(check.get(k), oracle.count(k) == 1) << "sampled key " << k;
  }
  EXPECT_TRUE(kv.check_invariants());
}

/// Run `fn` with the adapter the config selects.
template <template <class> class Body>
void dispatch(const Config& c) {
  if (c.structure == svc::Structure::kSkiplist) {
    Body<svc::SkipAdapter<NativePlatform>>::run(c, {});
  } else {
    Body<svc::HashAdapter<NativePlatform>>::run(c, {});
  }
}

template <class A>
struct ExactBody {
  static void run(const Config& c, A a) { run_single_thread_exact(c, a); }
};
template <class A>
struct ConservationBody {
  static void run(const Config& c, A a) { run_concurrent_conservation(c, a); }
};
template <class A>
struct SampledBody {
  static void run(const Config& c, A a) { run_sampled_key_oracle(c, a); }
};

class SvcDifferentialNative : public ::testing::TestWithParam<Config> {};

TEST_P(SvcDifferentialNative, SingleThreadExactVsStlOracle) {
  dispatch<ExactBody>(GetParam());
}

TEST_P(SvcDifferentialNative, ConcurrentConservation) {
  dispatch<ConservationBody>(GetParam());
}

TEST_P(SvcDifferentialNative, SampledKeyLockedOracle) {
  dispatch<SampledBody>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SvcDifferentialNative,
    ::testing::Values(
        Config{1, 4, svc::Dist::kZipf, 0.99, svc::Structure::kSkiplist},
        Config{4, 4, svc::Dist::kZipf, 0.99, svc::Structure::kSkiplist},
        Config{4, 2, svc::Dist::kUniform, 0.0, svc::Structure::kSkiplist},
        Config{8, 4, svc::Dist::kHotset, 0.0, svc::Structure::kSkiplist},
        Config{4, 4, svc::Dist::kZipf, 0.99, svc::Structure::kHash},
        Config{4, 4, svc::Dist::kUniform, 0.0, svc::Structure::kHash}),
    config_name);

// ---------------------------------------------------------------------------
// The simx deterministic twin: same WorkloadSpec type, same router, virtual
// threads. (Not a "Native" suite: fibers under TSan are all false positives.)
// ---------------------------------------------------------------------------

struct TwinResult {
  std::vector<bool> members;
  std::size_t size = 0;
  std::uint64_t makespan = 0;
  bool conserved = false;
};

TwinResult run_twin(unsigned shards, unsigned vthreads,
                    const svc::WorkloadSpec& spec, std::uint64_t ops) {
  using KV = svc::ShardedKV<SimPlatform, svc::SkipAdapter<SimPlatform>>;
  // Fresh simulated heap: replays must see identical allocation addresses
  // (and so identical line-table geometry) regardless of what earlier sim
  // tests in this process allocated.
  sim::reset_memory();
  KV kv(shards, svc::SkipAdapter<SimPlatform>{true});

  // Streams drawn on the host: identical bytes to what a native run with the
  // same spec would replay.
  const svc::OpStream stream(spec);
  std::vector<std::vector<svc::Op>> streams(vthreads);
  for (unsigned t = 0; t < vthreads; ++t) {
    stream.fill(t, ops, streams[t]);
  }

  std::vector<std::vector<int>> net(
      vthreads, std::vector<int>(spec.keyspace, 0));
  sim::Config cfg;
  cfg.seed = 77;
  auto res = sim::run(vthreads, cfg, [&](unsigned tid) {
    auto client = kv.make_client();
    for (const svc::Op& op : streams[tid]) {
      const auto k = static_cast<std::size_t>(op.key);
      switch (op.kind) {
        case svc::OpKind::kGet: client.get(op.key); break;
        case svc::OpKind::kPut: net[tid][k] += client.put(op.key); break;
        case svc::OpKind::kDel: net[tid][k] -= client.del(op.key); break;
      }
    }
  });

  // Verification also touches SimPlatform atoms, so it runs as a (single)
  // virtual thread too, writing into host-side capture state.
  TwinResult out;
  out.makespan = res.makespan();
  out.members.assign(spec.keyspace, false);
  out.conserved = true;
  sim::Config vcfg;
  vcfg.seed = 78;
  sim::run(1, vcfg, [&](unsigned) {
    auto check = kv.make_client();
    for (std::uint64_t k = 0; k < spec.keyspace; ++k) {
      int total = 0;
      for (const auto& v : net) total += v[static_cast<std::size_t>(k)];
      if (total != 0 && total != 1) out.conserved = false;
      const bool present = check.get(static_cast<std::int64_t>(k));
      if (present != (total == 1)) out.conserved = false;
      out.members[static_cast<std::size_t>(k)] = present;
      out.size += static_cast<std::size_t>(present);
    }
    if (!kv.check_invariants()) out.conserved = false;
  });
  return out;
}

TEST(SvcSimTwin, ConservationUnderVirtualThreads) {
  svc::WorkloadSpec spec;
  spec.keyspace = 128;
  spec.dist = svc::Dist::kZipf;
  spec.theta = 0.9;
  spec.get_pct = 30;
  spec.put_pct = 40;
  spec.seed = 0x51317;
  const TwinResult r = run_twin(4, 4, spec, 400);
  EXPECT_TRUE(r.conserved);
  EXPECT_GT(r.size, 0u);
}

TEST(SvcSimTwin, ReplayIsDeterministic) {
  svc::WorkloadSpec spec;
  spec.keyspace = 64;
  spec.dist = svc::Dist::kUniform;
  spec.get_pct = 20;
  spec.put_pct = 50;
  spec.seed = 0x7317;
  const TwinResult a = run_twin(4, 4, spec, 300);
  const TwinResult b = run_twin(4, 4, spec, 300);
  EXPECT_TRUE(a.conserved);
  EXPECT_TRUE(b.conserved);
  // Determinism is bit-exact: same final membership AND the same simulated
  // makespan (any scheduling divergence shows up in virtual time first).
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.makespan, b.makespan);
}

}  // namespace
