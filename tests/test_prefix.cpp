// The prefix() combinator: retry budgets, per-cause policies, statistics
// accounting, return-type handling, and hierarchical composition (§2.5).
#include <gtest/gtest.h>

#include <string>

#include "core/prefix.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

namespace {

using pto::PrefixPolicy;
using pto::PrefixStats;
using pto::SimPlatform;
namespace sim = pto::sim;

TEST(Prefix, AttemptBudgetHonored) {
  sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;  // first instrumented access aborts
  for (int budget : {1, 2, 5, 9}) {
    PrefixStats st;
    pto::Atom<SimPlatform, int> x;
    x.init(0);
    sim::run(1, cfg, [&](unsigned) {
      pto::prefix<SimPlatform>(
          PrefixPolicy(budget),
          [&] { x.store(1, std::memory_order_relaxed); }, [] {}, &st);
    });
    EXPECT_EQ(st.attempts, static_cast<std::uint64_t>(budget));
    EXPECT_EQ(st.fallbacks, 1u);
    EXPECT_EQ(st.aborts[pto::TX_ABORT_SPURIOUS],
              static_cast<std::uint64_t>(budget));
  }
}

TEST(Prefix, ExplicitAbortSkipsRemainingAttemptsByDefault) {
  PrefixStats st;
  sim::run(1, {}, [&](unsigned) {
    pto::prefix<SimPlatform>(
        PrefixPolicy(10),
        [] { SimPlatform::tx_abort<pto::TX_CODE_HELPING>(); }, [] {}, &st);
  });
  EXPECT_EQ(st.attempts, 1u);
  EXPECT_EQ(st.fallbacks, 1u);
}

TEST(Prefix, RetryOnExplicitRetriesFullBudget) {
  PrefixPolicy pol(5);
  pol.retry_on_explicit = true;
  PrefixStats st;
  sim::run(1, {}, [&](unsigned) {
    pto::prefix<SimPlatform>(
        pol, [] { SimPlatform::tx_abort<pto::TX_CODE_HELPING>(); }, [] {},
        &st);
  });
  EXPECT_EQ(st.attempts, 5u);
}

TEST(Prefix, ExplicitAbortCodeObservable) {
  sim::run(1, {}, [&](unsigned) {
    pto::prefix<SimPlatform>(
        1, [] { SimPlatform::tx_abort<pto::TX_CODE_VALIDATION>(); }, [] {});
    EXPECT_EQ(SimPlatform::last_user_code(), pto::TX_CODE_VALIDATION);
  });
}

TEST(Prefix, NonVoidResultPropagates) {
  sim::run(1, {}, [&](unsigned) {
    std::string r = pto::prefix<SimPlatform>(
        2, [] { return std::string("fast"); },
        [] { return std::string("slow"); });
    EXPECT_EQ(r, "fast");
    sim::Config unused;
    (void)unused;
  });
}

TEST(Prefix, FallbackResultPropagates) {
  sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  pto::Atom<SimPlatform, int> x;
  x.init(0);
  sim::run(1, cfg, [&](unsigned) {
    int r = pto::prefix<SimPlatform>(
        3,
        [&] {
          x.store(1, std::memory_order_relaxed);
          return 1;
        },
        [] { return 2; });
    EXPECT_EQ(r, 2);
  });
}

TEST(Prefix, StatsCountCommitsExactly) {
  PrefixStats st;
  sim::run(1, {}, [&](unsigned) {
    for (int i = 0; i < 250; ++i) {
      pto::prefix<SimPlatform>(3, [] {}, [] {}, &st);
    }
  });
  EXPECT_EQ(st.commits, 250u);
  EXPECT_EQ(st.attempts, 250u);
  EXPECT_EQ(st.fallbacks, 0u);
  EXPECT_EQ(st.total_aborts(), 0u);
}

TEST(Prefix, HierarchicalCompositionFallsThroughInOrder) {
  // Outer prefix (doomed) -> inner prefix (doomed) -> final fallback; the
  // attempt ordering is the paper's T_B(T_A(G)) recursive optimization.
  sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  PrefixStats outer_st, inner_st;
  pto::Atom<SimPlatform, int> x;
  x.init(0);
  int order = 0, outer_done = 0, inner_done = 0, final_done = 0;
  sim::run(1, cfg, [&](unsigned) {
    pto::prefix<SimPlatform>(
        2,
        [&] {
          x.store(1, std::memory_order_relaxed);  // dies spuriously
          outer_done = ++order;
        },
        [&] {
          pto::prefix<SimPlatform>(
              16,
              [&] {
                x.store(2, std::memory_order_relaxed);
                inner_done = ++order;
              },
              [&] { final_done = ++order; }, &inner_st);
        },
        &outer_st);
  });
  EXPECT_EQ(outer_done, 0);  // never committed
  EXPECT_EQ(inner_done, 0);
  EXPECT_EQ(final_done, 1);
  EXPECT_EQ(outer_st.attempts, 2u);
  EXPECT_EQ(inner_st.attempts, 16u);
}

TEST(Prefix, NestedPrefixInsideActiveTxIsFlat) {
  // An inner prefix inside a running transaction must not commit separately;
  // aborting the inner body aborts the whole (flat) transaction.
  PrefixStats outer_st;
  int final_path = 0;
  sim::run(1, {}, [&](unsigned) {
    pto::prefix<SimPlatform>(
        1,
        [&] {
          pto::prefix<SimPlatform>(
              1, [&] { SimPlatform::tx_abort<pto::TX_CODE_POLICY>(); },
              [&] { ADD_FAILURE() << "inner slow ran inside outer tx"; });
        },
        [&] { final_path = 1; }, &outer_st);
  });
  EXPECT_EQ(final_path, 1);
  EXPECT_EQ(outer_st.aborts[pto::TX_ABORT_EXPLICIT], 1u);
}

// A stub platform whose tx_begin reports a canned status, for driving the
// combinator's abort-code handling without a simulator or real HTM.
struct FakePlatform {
  static inline unsigned status = pto::TX_STARTED;
  static bool in_tx() { return false; }
  static std::jmp_buf& tx_checkpoint() {
    static thread_local std::jmp_buf buf;
    return buf;
  }
  static unsigned tx_begin() { return status; }
  static void tx_end() {}
};

TEST(Prefix, OutOfRangeStatusLandsInOtherBucket) {
  // A backend may surface statuses outside the TxAbort enum (unmapped RTM
  // bits, stray longjmp payloads); they must bucket to TX_ABORT_OTHER, never
  // index past the aborts array.
  for (unsigned s : {pto::kTxCodeCount, 42u, 0xdeadu}) {
    FakePlatform::status = s;
    PrefixStats st;
    int r = pto::prefix<FakePlatform>(3, [] { return 1; }, [] { return 2; },
                                      &st);
    EXPECT_EQ(r, 2);
    EXPECT_EQ(st.attempts, 3u);  // retried like a transient abort
    EXPECT_EQ(st.aborts[pto::TX_ABORT_OTHER], 3u) << "status " << s;
    EXPECT_EQ(st.total_aborts(), 3u);
    EXPECT_EQ(st.fallbacks, 1u);
  }
}

TEST(Prefix, DurationAbortGatedLikeCapacity) {
  // DURATION recurs just like CAPACITY, so it must consume the budget the
  // same way: one attempt by default, the full budget under retry_on_capacity.
  FakePlatform::status = pto::TX_ABORT_DURATION;
  PrefixStats st;
  pto::prefix<FakePlatform>(8, [] {}, [] {}, &st);
  EXPECT_EQ(st.attempts, 1u);
  EXPECT_EQ(st.aborts[pto::TX_ABORT_DURATION], 1u);
  EXPECT_EQ(st.fallbacks, 1u);

  PrefixPolicy pol(8);
  pol.retry_on_capacity = true;
  PrefixStats st2;
  pto::prefix<FakePlatform>(pol, [] {}, [] {}, &st2);
  EXPECT_EQ(st2.attempts, 8u);
  EXPECT_EQ(st2.aborts[pto::TX_ABORT_DURATION], 8u);
  EXPECT_EQ(st2.fallbacks, 1u);
}

TEST(Prefix, WorksOutsideSimulationViaFallback) {
  // Host-side (no simulation running): SimPlatform transactions are
  // unavailable, prefix must route to the fallback.
  int r = pto::prefix<SimPlatform>(3, [] { return 1; }, [] { return 2; });
  EXPECT_EQ(r, 2);
}

}  // namespace
