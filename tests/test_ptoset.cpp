// PTOArraySet — the §5 "PTO-friendly design" demonstrator: model checks,
// capacity behaviour, fast/slow path interplay, concurrency, and the design
// claim itself (fast path allocates nothing; slow path works when every
// transaction dies).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.h"
#include "ds/ptoset/pto_array_set.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

namespace {

using pto::PTOArraySet;
using pto::SimPlatform;

TEST(PtoArraySet, SequentialMatchesStdSet) {
  PTOArraySet<SimPlatform, 64> s;
  auto ctx = s.make_ctx();
  std::set<std::int64_t> model;
  pto::SplitMix64 rng(13);
  for (int i = 0; i < 4000; ++i) {
    auto k = static_cast<std::int64_t>(rng.next_below(48));  // fits capacity
    switch (rng.next_percent() % 3) {
      case 0:
        ASSERT_EQ(s.insert(ctx, k), model.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(s.remove(ctx, k), model.erase(k) == 1);
        break;
      default:
        ASSERT_EQ(s.contains(ctx, k), model.count(k) == 1);
    }
    ASSERT_TRUE(s.check_invariants());
  }
  EXPECT_EQ(s.size_slow(), model.size());
}

TEST(PtoArraySet, CapacityBounds) {
  PTOArraySet<SimPlatform, 8> s;
  auto ctx = s.make_ctx();
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(s.insert(ctx, i));
  EXPECT_TRUE(s.full());
  EXPECT_FALSE(s.insert(ctx, 100));  // rejected, set unchanged
  EXPECT_EQ(s.size_slow(), 8u);
  EXPECT_FALSE(s.insert(ctx, 3));  // duplicate also false
  EXPECT_TRUE(s.remove(ctx, 0));
  EXPECT_TRUE(s.insert(ctx, 100));
  EXPECT_TRUE(s.check_invariants());
}

TEST(PtoArraySet, FastPathAllocatesNothing) {
  // The design claim (§5): steady-state updates touch no allocator at all.
  PTOArraySet<SimPlatform, 32> s;
  auto res = pto::sim::run(1, {}, [&](unsigned) {
    auto ctx = s.make_ctx();
    for (int i = 0; i < 500; ++i) {
      s.insert(ctx, i % 16);
      s.remove(ctx, i % 16);
    }
    EXPECT_EQ(ctx.stats.fallbacks, 0u);
  });
  EXPECT_EQ(res.totals().allocs, 0u);
  EXPECT_LE(res.totals().cas_ops, 1u);  // the epoch-handle registration CAS
}

TEST(PtoArraySet, SlowPathCarriesTheLoadUnderFailureInjection) {
  // Every transaction dies: the unoptimized CoW slow path must keep full
  // correctness (the paper's progress-preservation requirement).
  PTOArraySet<SimPlatform, 32> s;
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  std::set<std::int64_t> model;
  pto::sim::run(1, cfg, [&](unsigned) {
    auto ctx = s.make_ctx();
    pto::SplitMix64 rng(5);
    for (int i = 0; i < 400; ++i) {
      auto k = static_cast<std::int64_t>(rng.next_below(24));
      if (rng.next() % 2 == 0) {
        ASSERT_EQ(s.insert(ctx, k), model.insert(k).second);
      } else {
        ASSERT_EQ(s.remove(ctx, k), model.erase(k) == 1);
      }
    }
    EXPECT_EQ(ctx.stats.commits, 0u);
  });
  EXPECT_EQ(s.size_slow(), model.size());
  EXPECT_TRUE(s.check_invariants());
}

class PtoSetConcurrent
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(PtoSetConcurrent, PerKeyConsistency) {
  auto [threads, seed, abort_prob] = GetParam();
  const auto n = static_cast<unsigned>(threads);
  PTOArraySet<SimPlatform, 48> s;
  constexpr int kRange = 32;
  std::vector<std::vector<int>> net(n, std::vector<int>(kRange, 0));
  pto::sim::Config cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.htm.spurious_abort_prob = abort_prob;  // mix fast and slow paths
  auto res = pto::sim::run(n, cfg, [&](unsigned tid) {
    auto ctx = s.make_ctx();
    for (int i = 0; i < 300; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      auto c = pto::sim::rnd() % 100;
      if (c < 20) {
        (void)s.contains(ctx, k);
      } else if (c < 60) {
        if (s.insert(ctx, k)) ++net[tid][static_cast<std::size_t>(k)];
      } else {
        if (s.remove(ctx, k)) --net[tid][static_cast<std::size_t>(k)];
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  auto ctx = s.make_ctx();
  for (int k = 0; k < kRange; ++k) {
    int total = 0;
    for (auto& v : net) total += v[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(s.contains(ctx, k), total == 1) << "key " << k;
  }
  EXPECT_TRUE(s.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PtoSetConcurrent,
    ::testing::Combine(::testing::Values(2, 4, 8), ::testing::Values(1, 2),
                       ::testing::Values(0.0, 0.02)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) > 0 ? "_inj" : "_clean");
    });

TEST(PtoArraySet, NativePlatform) {
  PTOArraySet<pto::NativePlatform, 48> s;
  auto ctx = s.make_ctx();
  std::set<std::int64_t> model;
  pto::SplitMix64 rng(77);
  for (int i = 0; i < 2500; ++i) {
    auto k = static_cast<std::int64_t>(rng.next_below(40));
    if (rng.next() % 2 == 0) {
      ASSERT_EQ(s.insert(ctx, k), model.insert(k).second);
    } else {
      ASSERT_EQ(s.remove(ctx, k), model.erase(k) == 1);
    }
  }
  EXPECT_EQ(s.size_slow(), model.size());
  EXPECT_TRUE(s.check_invariants());
}

}  // namespace
