// Platform conformance: the same typed test battery runs against
// NativePlatform and SimPlatform, pinning down the semantics every data
// structure relies on (atomics, CAS failure reporting, allocation, fences,
// rnd, strong-atomicity flags).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "platform/native_platform.h"
#include "platform/platform.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

namespace {

using pto::Atom;

template <class P>
class PlatformConformance : public ::testing::Test {};

using Platforms = ::testing::Types<pto::NativePlatform, pto::SimPlatform>;
TYPED_TEST_SUITE(PlatformConformance, Platforms);

TYPED_TEST(PlatformConformance, SatisfiesConcept) {
  static_assert(pto::Platform<TypeParam>);
}

TYPED_TEST(PlatformConformance, LoadStoreRoundTrip) {
  Atom<TypeParam, std::uint64_t> a;
  a.init(0);
  a.store(42);
  EXPECT_EQ(a.load(), 42u);
  a.store(7, std::memory_order_relaxed);
  EXPECT_EQ(a.load(std::memory_order_acquire), 7u);
}

TYPED_TEST(PlatformConformance, PointerAtomics) {
  int x = 1, y = 2;
  Atom<TypeParam, int*> p;
  p.init(&x);
  int* expect = &x;
  EXPECT_TRUE(p.compare_exchange_strong(expect, &y));
  EXPECT_EQ(p.load(), &y);
}

TYPED_TEST(PlatformConformance, CasFailureReportsObservedValue) {
  Atom<TypeParam, int> a;
  a.init(10);
  int expect = 5;
  EXPECT_FALSE(a.compare_exchange_strong(expect, 99));
  EXPECT_EQ(expect, 10);
  EXPECT_EQ(a.load(), 10);
  EXPECT_TRUE(a.compare_exchange_strong(expect, 99));
  EXPECT_EQ(a.load(), 99);
}

TYPED_TEST(PlatformConformance, FetchAddReturnsOld) {
  Atom<TypeParam, std::uint32_t> a;
  a.init(5);
  EXPECT_EQ(a.fetch_add(3), 5u);
  EXPECT_EQ(a.load(), 8u);
  // Wrap-around is modular.
  a.store(~std::uint32_t{0});
  EXPECT_EQ(a.fetch_add(1), ~std::uint32_t{0});
  EXPECT_EQ(a.load(), 0u);
}

TYPED_TEST(PlatformConformance, SmallTypes) {
  Atom<TypeParam, std::uint8_t> b;
  b.init(200);
  EXPECT_EQ(b.fetch_add(100), 200u);  // wraps to 44
  EXPECT_EQ(b.load(), 44u);
  Atom<TypeParam, std::int16_t> s;
  s.init(-5);
  EXPECT_EQ(s.load(), -5);
}

TYPED_TEST(PlatformConformance, MakeDestroyRoundTrip) {
  struct Obj {
    int a = 3;
    double b = 2.5;
  };
  Obj* o = TypeParam::template make<Obj>();
  EXPECT_EQ(o->a, 3);
  EXPECT_EQ(o->b, 2.5);
  TypeParam::template destroy<Obj>(o);
}

TYPED_TEST(PlatformConformance, AllocBytesAligned) {
  // Data-structure word packing needs at least 8-byte alignment; the sim
  // arena gives cache-line alignment.
  for (std::size_t n : {1u, 8u, 63u, 64u, 200u}) {
    void* p = TypeParam::alloc_bytes(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    TypeParam::free_bytes(p, n);
  }
}

TYPED_TEST(PlatformConformance, RndVaries) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(TypeParam::rnd());
  EXPECT_GT(seen.size(), 32u);
}

TYPED_TEST(PlatformConformance, NotInTxByDefault) {
  EXPECT_FALSE(TypeParam::in_tx());
  TypeParam::fence();  // must be callable anywhere
  TypeParam::pause();
}

TEST(SimPlatformSpecifics, StrongAtomicityAdvertised) {
  EXPECT_TRUE(pto::SimPlatform::strongly_atomic());
}

TEST(SimPlatformSpecifics, SimAtomicsAreInstrumentedInsideRuns) {
  Atom<pto::SimPlatform, int> a;
  a.init(0);
  auto res = pto::sim::run(1, {}, [&](unsigned) {
    for (int i = 0; i < 10; ++i) a.fetch_add(1);
    for (int i = 0; i < 5; ++i) (void)a.load();
  });
  EXPECT_EQ(res.totals().rmws, 10u);
  EXPECT_EQ(res.totals().loads, 5u);
}

}  // namespace
