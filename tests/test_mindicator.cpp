// Mindicator: sequential semantics against a reference model, quiescent
// invariants, and deterministic concurrent stress on the simulator for every
// variant (lock-free / PTO / TLE).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "ds/mindicator/mindicator.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"
#include "sim_util.h"

namespace {

using pto::Mindicator;
using pto::SimPlatform;

enum class Variant { kLockfree, kPto, kTle };

const char* name(Variant v) {
  switch (v) {
    case Variant::kLockfree: return "lf";
    case Variant::kPto: return "pto";
    default: return "tle";
  }
}

template <class P>
void arrive(Mindicator<P>& m, Variant v, unsigned leaf, std::int32_t x) {
  switch (v) {
    case Variant::kLockfree: m.arrive_lf(leaf, x); break;
    case Variant::kPto: m.arrive_pto(leaf, x); break;
    case Variant::kTle: m.arrive_tle(leaf, x); break;
  }
}

template <class P>
void depart(Mindicator<P>& m, Variant v, unsigned leaf) {
  switch (v) {
    case Variant::kLockfree: m.depart_lf(leaf); break;
    case Variant::kPto: m.depart_pto(leaf); break;
    case Variant::kTle: m.depart_tle(leaf); break;
  }
}

class MindicatorSequential : public ::testing::TestWithParam<Variant> {};

TEST_P(MindicatorSequential, MatchesReferenceModel) {
  Variant v = GetParam();
  Mindicator<SimPlatform> m(16);
  std::multiset<std::int32_t> model;
  std::vector<std::int32_t> slot(16, Mindicator<SimPlatform>::kEmpty);
  pto::SplitMix64 rng(7 + static_cast<int>(v));

  for (int step = 0; step < 2000; ++step) {
    unsigned leaf = static_cast<unsigned>(rng.next_below(16));
    if (slot[leaf] == Mindicator<SimPlatform>::kEmpty) {
      auto x = static_cast<std::int32_t>(rng.next_below(1000));
      arrive(m, v, leaf, x);
      slot[leaf] = x;
      model.insert(x);
    } else {
      depart(m, v, leaf);
      model.erase(model.find(slot[leaf]));
      slot[leaf] = Mindicator<SimPlatform>::kEmpty;
    }
    std::int32_t expect = model.empty() ? Mindicator<SimPlatform>::kEmpty
                                        : *model.begin();
    ASSERT_EQ(m.query(), expect) << "variant=" << name(v) << " step=" << step;
  }
  if (v != Variant::kTle) {
    EXPECT_TRUE(m.check_invariants());
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, MindicatorSequential,
                         ::testing::Values(Variant::kLockfree, Variant::kPto,
                                           Variant::kTle),
                         [](const auto& info) { return name(info.param); });

class MindicatorStress
    : public ::testing::TestWithParam<std::tuple<Variant, int, int>> {};

// Rounds of concurrent arrives and departs separated by barriers. At each
// quiescent point the root must equal the exact minimum of the announced
// values (the structure is quiescently consistent; mid-flight queries are
// exercised but only sanity-checked, as in the original).
TEST_P(MindicatorStress, ConcurrentArriveDepartQuiesces) {
  auto [v, threads, seed] = GetParam();
  const auto n = static_cast<unsigned>(threads);
  Mindicator<SimPlatform> m(64);
  pto::testutil::SimBarrier barrier(n);
  std::vector<std::int32_t> announced(n, 0);
  pto::sim::Config cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);

  auto res = pto::sim::run(n, cfg, [&](unsigned tid) {
    for (int round = 0; round < 60; ++round) {
      auto x = static_cast<std::int32_t>(pto::sim::rnd() % 100000);
      announced[tid] = x;
      arrive(m, v, tid, x);
      (void)m.query();  // exercise concurrent queries
      barrier.wait();
      if (tid == 0) {
        std::int32_t expect = *std::min_element(announced.begin(),
                                                announced.end());
        ASSERT_EQ(m.query(), expect) << "round " << round;
      }
      barrier.wait();
      // Staggered departs: even threads leave first, so odd threads' values
      // must keep the min alive.
      if (tid % 2 == 0) depart(m, v, tid);
      barrier.wait();
      if (tid == 1 && n > 1) {
        std::int32_t expect = announced[1];
        for (unsigned t = 3; t < n; t += 2) {
          expect = std::min(expect, announced[t]);
        }
        ASSERT_EQ(m.query(), expect) << "round " << round;
      }
      barrier.wait();
      if (tid % 2 == 1) depart(m, v, tid);
      barrier.wait();
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  EXPECT_EQ(m.query(), Mindicator<SimPlatform>::kEmpty);
  if (v != Variant::kTle) {
    EXPECT_TRUE(m.check_invariants());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MindicatorStress,
    ::testing::Combine(::testing::Values(Variant::kLockfree, Variant::kPto,
                                         Variant::kTle),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(name(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(MindicatorPto, FastPathCommitsOnSim) {
  Mindicator<SimPlatform> m(16);
  pto::PrefixStats st;
  pto::sim::run(1, {}, [&](unsigned) {
    for (int i = 0; i < 100; ++i) {
      m.arrive_pto(0, i, &st);
      m.depart_pto(0, &st);
    }
  });
  EXPECT_EQ(st.commits, 200u);
  EXPECT_EQ(st.fallbacks, 0u);
}

TEST(MindicatorPto, FallsBackWhenTransactionsAbort) {
  Mindicator<SimPlatform> m(16);
  pto::PrefixStats st;
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;  // failure injection: every tx dies
  pto::sim::run(1, cfg, [&](unsigned) {
    for (int i = 0; i < 50; ++i) {
      m.arrive_pto(0, i, &st);
      m.depart_pto(0, &st);
    }
  });
  EXPECT_EQ(st.commits, 0u);
  EXPECT_EQ(st.fallbacks, 100u);
  EXPECT_EQ(m.query(), Mindicator<SimPlatform>::kEmpty);
  EXPECT_TRUE(m.check_invariants());
}

TEST(MindicatorNative, WorksWithRealThreadsOrRtm) {
  Mindicator<pto::NativePlatform> m(16);
  for (int i = 0; i < 200; ++i) {
    m.arrive_pto(static_cast<unsigned>(i % 16), i);
  }
  EXPECT_EQ(m.query(), 0);
  for (int i = 0; i < 16; ++i) m.depart_pto(static_cast<unsigned>(i));
  EXPECT_EQ(m.query(), Mindicator<pto::NativePlatform>::kEmpty);
}

TEST(MindicatorPto, EquivalentToLockfreeUnderMixedUse) {
  // PTO and LF operations interleave on the same structure (fallback
  // compatibility): final state must still be consistent.
  Mindicator<SimPlatform> m(64);
  pto::sim::Config cfg;
  cfg.seed = 99;
  pto::sim::run(8, cfg, [&](unsigned tid) {
    for (int i = 0; i < 200; ++i) {
      auto x = static_cast<std::int32_t>(pto::sim::rnd() % 1000);
      if (tid % 2 == 0) {
        m.arrive_lf(tid, x);
        m.depart_lf(tid);
      } else {
        m.arrive_pto(tid, x);
        m.depart_pto(tid);
      }
    }
  });
  EXPECT_EQ(m.query(), Mindicator<SimPlatform>::kEmpty);
  EXPECT_TRUE(m.check_invariants());
}

}  // namespace
