// ThreadSet unit tests: word-boundary behavior, iteration order, and
// equivalence with the single-uint64_t bitmask semantics the simulator used
// before the 1024-thread scale-out (the "oracle" tests).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/threadset.h"

using pto::ThreadSet;
using pto::kMaxThreads;
using pto::kThreadWords;

namespace {

unsigned words_for(unsigned nthreads) { return (nthreads + 63) / 64; }

std::vector<unsigned> collect(const ThreadSet& s, unsigned nw) {
  std::vector<unsigned> out;
  s.for_each(nw, [&](unsigned t) { out.push_back(t); });
  return out;
}

}  // namespace

TEST(ThreadSet, SetTestClearAcrossWordBoundaries) {
  ThreadSet s;
  for (unsigned tid : {0u, 63u, 64u, 65u, 127u, 128u, kMaxThreads - 1}) {
    EXPECT_FALSE(s.test(tid)) << tid;
    s.set(tid);
    EXPECT_TRUE(s.test(tid)) << tid;
  }
  // Setting 64 must not touch word 0, and clearing 63 must not touch word 1.
  s.clear(63);
  EXPECT_FALSE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(65));
  s.clear(64);
  EXPECT_FALSE(s.test(64));
  EXPECT_TRUE(s.test(65));
  EXPECT_TRUE(s.test(kMaxThreads - 1));
}

TEST(ThreadSet, EmptyAndResetRespectWordCount) {
  ThreadSet s;
  EXPECT_TRUE(s.empty(1));
  EXPECT_TRUE(s.empty(kThreadWords));
  s.set(70);
  // A single-word view cannot see word 1; the two-word view can.
  EXPECT_TRUE(s.empty(1));
  EXPECT_FALSE(s.empty(2));
  s.reset(1);  // only clears word 0
  EXPECT_FALSE(s.empty(2));
  s.reset(2);
  EXPECT_TRUE(s.empty(kThreadWords));
}

TEST(ThreadSet, IterationIsAscendingAcrossWords) {
  ThreadSet s;
  const std::vector<unsigned> tids = {3, 63, 64, 65, 130, 200, 1023};
  for (unsigned t : tids) s.set(t);
  EXPECT_EQ(collect(s, kThreadWords), tids);
  // A narrower word count truncates at the word boundary, never mid-word.
  EXPECT_EQ(collect(s, 2), (std::vector<unsigned>{3, 63, 64, 65}));
}

TEST(ThreadSet, ForEachOtherSkipsOnlySelf) {
  ThreadSet s;
  for (unsigned t : {10u, 64u, 65u, 200u}) s.set(t);
  std::vector<unsigned> out;
  s.for_each_other(64, words_for(256), [&](unsigned t) { out.push_back(t); });
  EXPECT_EQ(out, (std::vector<unsigned>{10, 65, 200}));
  // Self not a member: visits everything.
  out.clear();
  s.for_each_other(63, words_for(256), [&](unsigned t) { out.push_back(t); });
  EXPECT_EQ(out, (std::vector<unsigned>{10, 64, 65, 200}));
}

TEST(ThreadSet, AnyOtherMatchesMaskSemantics) {
  for (unsigned self : {0u, 63u, 64u, 65u, 1023u}) {
    ThreadSet s;
    const unsigned nw = kThreadWords;
    EXPECT_FALSE(s.any_other(self, nw)) << self;
    s.set(self);
    EXPECT_FALSE(s.any_other(self, nw)) << self;  // only self present
    const unsigned other = self == 0 ? 1 : self - 1;
    s.set(other);
    EXPECT_TRUE(s.any_other(self, nw)) << self;
    s.clear(other);
    EXPECT_FALSE(s.any_other(self, nw)) << self;
  }
}

TEST(ThreadSet, AssignSingleDropsEveryOtherMember) {
  ThreadSet s;
  for (unsigned t : {0u, 63u, 64u, 500u}) s.set(t);
  s.assign_single(65, kThreadWords);
  EXPECT_EQ(collect(s, kThreadWords), std::vector<unsigned>{65});
}

TEST(ThreadSet, PopcountAndFirst) {
  ThreadSet s;
  EXPECT_EQ(s.popcount(kThreadWords), 0u);
  EXPECT_EQ(s.first(kThreadWords), kMaxThreads);  // empty sentinel
  s.set(100);
  s.set(64);
  s.set(1000);
  EXPECT_EQ(s.popcount(kThreadWords), 3u);
  EXPECT_EQ(s.first(kThreadWords), 64u);
  s.clear(64);
  EXPECT_EQ(s.first(kThreadWords), 100u);
}

TEST(ThreadSet, SetFirstNBoundaries) {
  for (unsigned n : {1u, 63u, 64u, 65u, 128u, 1024u}) {
    ThreadSet s;
    s.set_first_n(n, kThreadWords);
    EXPECT_EQ(s.popcount(kThreadWords), n) << n;
    EXPECT_TRUE(s.test(n - 1)) << n;
    if (n < kMaxThreads) {
      EXPECT_FALSE(s.test(n)) << n;
    }
    EXPECT_EQ(s.first(kThreadWords), 0u) << n;
  }
}

// Oracle test: with nw == 1 every operation must agree with the plain
// uint64_t bitmask arithmetic the simulator's line masks used before the
// scale-out — that equivalence is what the golden-cycle tests lean on.
TEST(ThreadSet, SingleWordMatchesUint64Oracle) {
  std::uint64_t oracle = 0;
  ThreadSet s;
  // A deterministic pseudo-random op sequence over tids 0..63.
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 2000; ++step) {
    const unsigned tid = static_cast<unsigned>(next() % 64);
    switch (next() % 4) {
      case 0:
        oracle |= std::uint64_t{1} << tid;
        s.set(tid);
        break;
      case 1:
        oracle &= ~(std::uint64_t{1} << tid);
        s.clear(tid);
        break;
      case 2:
        oracle = std::uint64_t{1} << tid;  // the old exclusive-take
        s.assign_single(tid, 1);
        break;
      case 3: {
        // Victims loop: iterate others exactly as the old ctzll loop did.
        std::vector<unsigned> expect;
        std::uint64_t m = oracle & ~(std::uint64_t{1} << tid);
        while (m != 0) {
          expect.push_back(static_cast<unsigned>(__builtin_ctzll(m)));
          m &= m - 1;
        }
        std::vector<unsigned> got;
        s.for_each_other(tid, 1, [&](unsigned t) { got.push_back(t); });
        ASSERT_EQ(got, expect) << "step " << step;
        break;
      }
    }
    ASSERT_EQ(s.test(tid), (oracle >> tid) & 1);
    ASSERT_EQ(s.empty(1), oracle == 0);
    ASSERT_EQ(s.any_other(tid, 1),
              (oracle & ~(std::uint64_t{1} << tid)) != 0);
    ASSERT_EQ(s.popcount(1),
              static_cast<unsigned>(__builtin_popcountll(oracle)));
    if (oracle != 0) {
      ASSERT_EQ(s.first(1), static_cast<unsigned>(__builtin_ctzll(oracle)));
    }
  }
}
