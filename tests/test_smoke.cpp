// End-to-end smoke tests for the core stack: simulator, platforms, prefix
// transactions, and epoch reclamation. Deeper per-module suites live in the
// other test files.
#include <gtest/gtest.h>

#include "core/prefix.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "reclaim/epoch.h"
#include "sim/sim.h"

namespace {

using pto::Atom;
using pto::NativePlatform;
using pto::SimPlatform;

TEST(Smoke, SimRunsSingleThread) {
  int executed = 0;
  auto res = pto::sim::run(1, {}, [&](unsigned tid) {
    EXPECT_EQ(tid, 0u);
    ++executed;
    pto::sim::op_done(5);
  });
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(res.totals().ops_completed, 5u);
}

TEST(Smoke, SimInterleavesThreads) {
  Atom<SimPlatform, std::uint64_t> counter;
  counter.init(0);
  auto res = pto::sim::run(4, {}, [&](unsigned) {
    for (int i = 0; i < 100; ++i) counter.fetch_add(1);
  });
  int done_in_sim = 0;
  (void)done_in_sim;
  // Host-side read after the simulation finished.
  std::uint64_t final = 0;
  pto::sim::run(1, {}, [&](unsigned) { final = counter.load(); });
  EXPECT_EQ(final, 400u);
  EXPECT_GT(res.makespan(), 0u);
}

TEST(Smoke, SimPrefixTransactionCommits) {
  Atom<SimPlatform, int> a, b;
  a.init(0);
  b.init(0);
  pto::sim::run(2, {}, [&](unsigned) {
    for (int i = 0; i < 50; ++i) {
      pto::prefix<SimPlatform>(
          3,
          [&] {
            // Multi-word atomic update in a transaction.
            a.store(a.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
            b.store(b.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
          },
          [&] {
            a.fetch_add(1);
            b.fetch_add(1);
          });
    }
  });
  int av = 0, bv = 0;
  pto::sim::run(1, {}, [&](unsigned) {
    av = a.load();
    bv = b.load();
  });
  EXPECT_EQ(av, 100);
  EXPECT_EQ(bv, 100);
}

TEST(Smoke, SimExplicitAbortFallsBack) {
  Atom<SimPlatform, int> x;
  x.init(0);
  pto::PrefixStats st;
  pto::sim::run(1, {}, [&](unsigned) {
    int r = pto::prefix<SimPlatform>(
        2, [&]() -> int { SimPlatform::tx_abort<pto::TX_CODE_HELPING>(); },
        [&]() -> int {
          x.store(7);
          return 42;
        },
        &st);
    EXPECT_EQ(r, 42);
  });
  EXPECT_EQ(st.fallbacks, 1u);
  EXPECT_EQ(st.aborts[pto::TX_ABORT_EXPLICIT], 1u);
  // Explicit aborts skip remaining attempts by default.
  EXPECT_EQ(st.attempts, 1u);
}

TEST(Smoke, NativePrefixTransactionWorks) {
  Atom<NativePlatform, int> a, b;
  a.init(0);
  b.init(0);
  pto::PrefixStats st;
  for (int i = 0; i < 100; ++i) {
    pto::prefix<NativePlatform>(
        4,
        [&] {
          a.store(a.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
          b.store(b.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
        },
        [&] {
          a.fetch_add(1);
          b.fetch_add(1);
        },
        &st);
  }
  EXPECT_EQ(a.load(), 100);
  EXPECT_EQ(b.load(), 100);
  EXPECT_EQ(st.commits + st.fallbacks, 100u);
}

TEST(Smoke, EpochReclaimsOnSim) {
  struct Node {
    Atom<SimPlatform, int> v;
  };
  pto::sim::Config cfg;
  auto res = pto::sim::run(2, cfg, [&](unsigned) {
    static pto::EpochDomain<SimPlatform>* dom = nullptr;
    if (pto::sim::thread_id() == 0 && dom == nullptr) {
      dom = new pto::EpochDomain<SimPlatform>();
    }
    while (dom == nullptr) pto::sim::cpu_pause();
    auto h = dom->register_thread();
    for (int i = 0; i < 200; ++i) {
      auto* n = SimPlatform::make<Node>();
      {
        pto::EpochDomain<SimPlatform>::Guard g(h);
        n->v.store(i, std::memory_order_relaxed);
      }
      h.retire(n);
    }
    h.reclaim_some();
  });
  EXPECT_EQ(res.uaf_count, 0u);
  EXPECT_GT(res.totals().frees, 0u);
}

TEST(Smoke, DeterministicRuns) {
  auto trace = [&]() -> std::uint64_t {
    Atom<SimPlatform, std::uint64_t> w;
    w.init(0);
    auto res = pto::sim::run(3, {}, [&](unsigned tid) {
      for (int i = 0; i < 50; ++i) {
        w.fetch_add(pto::sim::rnd() % 7 + tid);
      }
    });
    return res.makespan() ^ res.totals().loads;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
