// pto::explore — adversarial schedule exploration and HTM fault injection.
//
// Covers, in order: env/token parsing, per-trial seed derivation, the
// acceptance criteria (PTO_SCHED=rr is bit-for-bit the plain dispatcher;
// replaying a pct:<seed> token reproduces the identical schedule), the
// dump -> replay pipeline the minimizer builds on, fault-injection
// properties (spurious aborts and capacity jitter surface, workload RNG
// streams stay untouched), and pto::check cleanliness of the real
// structures under explored schedules.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/check.h"
#include "core/prefix.h"
#include "ds/skiplist/skiplist.h"
#include "explore/explore.h"
#include "htm/txcode.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"
#include "explore_util.h"
#include "sim_util.h"

namespace {

using pto::Atom;
using pto::SimPlatform;
namespace sim = pto::sim;
namespace xp = pto::explore;
namespace tu = pto::testutil;

// ---------------------------------------------------------------------------
// Parsing and tokens
// ---------------------------------------------------------------------------

TEST(ExploreParse, SchedForms) {
  xp::Options o;
  EXPECT_TRUE(xp::parse_sched("rr", o));
  EXPECT_EQ(o.policy, xp::Policy::kRR);

  EXPECT_TRUE(xp::parse_sched("pct:7", o));
  EXPECT_EQ(o.policy, xp::Policy::kPCT);
  EXPECT_EQ(o.seed, 7u);
  EXPECT_EQ(o.change_points, 3u);  // defaults preserved
  EXPECT_EQ(o.horizon, 100'000u);

  EXPECT_TRUE(xp::parse_sched("pct:9:5", o));
  EXPECT_EQ(o.seed, 9u);
  EXPECT_EQ(o.change_points, 5u);

  EXPECT_TRUE(xp::parse_sched("pct:9:5:5000", o));
  EXPECT_EQ(o.horizon, 5000u);

  EXPECT_TRUE(xp::parse_sched("rand:42", o));
  EXPECT_EQ(o.policy, xp::Policy::kRandom);
  EXPECT_EQ(o.seed, 42u);

  EXPECT_TRUE(xp::parse_sched("replay:/tmp/sched.txt", o));
  EXPECT_EQ(o.policy, xp::Policy::kReplay);
  EXPECT_EQ(o.replay_path, "/tmp/sched.txt");
}

TEST(ExploreParse, RejectsMalformedSched) {
  for (const char* bad : {"", "pct", "pct:", "pct:x", "pct:1:2:0",
                          "pct:1:99", "rand:", "rand:zz", "replay:",
                          "bogus", "rr:extra"}) {
    xp::Options o;
    o.seed = 123;  // must be left untouched on failure
    EXPECT_FALSE(xp::parse_sched(bad, o)) << "accepted: " << bad;
    EXPECT_EQ(o.seed, 123u) << "mutated by: " << bad;
  }
}

TEST(ExploreParse, Faults) {
  xp::Options o;
  EXPECT_TRUE(xp::parse_faults("9:0.01", o));
  EXPECT_EQ(o.fault_seed, 9u);
  EXPECT_DOUBLE_EQ(o.fault_rate, 0.01);

  for (const char* bad : {"", "9", "9:", ":0.5", "9:1.5", "9:-0.1", "x:0.5"}) {
    xp::Options b;
    EXPECT_FALSE(xp::parse_faults(bad, b)) << "accepted: " << bad;
  }
}

TEST(ExploreParse, TokenRoundTrips) {
  xp::Options o;
  o.policy = xp::Policy::kPCT;
  o.seed = 7;
  o.change_points = 4;
  o.horizon = 20'000;
  EXPECT_EQ(xp::token(o), "PTO_SCHED=pct:7:4:20000");

  o.fault_seed = 9;
  o.fault_rate = 0.01;
  std::string tok = xp::token(o);
  EXPECT_NE(tok.find("PTO_HTM_FAULTS=9:0.01"), std::string::npos) << tok;

  // The PTO_SCHED half of the token parses back to the same options.
  xp::Options back;
  ASSERT_TRUE(xp::parse_sched("pct:7:4:20000", back));
  EXPECT_EQ(back.seed, o.seed);
  EXPECT_EQ(back.change_points, o.change_points);
  EXPECT_EQ(back.horizon, o.horizon);
}

TEST(ExploreParse, DeriveSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(xp::derive_seed(1, 0), xp::derive_seed(1, 0));
  EXPECT_NE(xp::derive_seed(1, 0), xp::derive_seed(1, 1));
  EXPECT_NE(xp::derive_seed(1, 0), xp::derive_seed(2, 0));
}

// ---------------------------------------------------------------------------
// Workload harness: contended counter + per-op interleaving log
// ---------------------------------------------------------------------------

/// The observable outcome of one run: which thread executed each op (in host
/// serialization order — fibers run one at a time, so a plain vector works),
/// final per-thread clocks, and aggregate stats.
struct RunRecord {
  std::vector<unsigned> order;
  std::vector<std::uint64_t> clocks;
  std::uint64_t dispatches = 0;
  std::uint64_t total = 0;
};

RunRecord run_counter(unsigned threads, int ops, const xp::Options& x,
                      std::uint64_t seed = 1) {
  RunRecord r;
  // Runs are compared byte-for-byte, so each starts from pristine line
  // state: residual ownership from a previous run would flip hit/miss
  // costs and with them the schedule.
  sim::reset_memory();
  Atom<SimPlatform, std::uint64_t> counter;
  counter.init(0);
  sim::Config cfg;
  cfg.seed = seed;
  cfg.explore = x;
  auto res = sim::run(threads, cfg, [&](unsigned tid) {
    for (int i = 0; i < ops; ++i) {
      counter.fetch_add(1);
      r.order.push_back(tid);
    }
  });
  r.clocks = res.clocks;
  r.dispatches = res.totals().dispatches;
  r.total = counter.load(std::memory_order_relaxed);
  return r;
}

// Acceptance criterion: with PTO_SCHED=rr (or unset) the dispatcher is
// bit-for-bit the plain one — same clocks, same dispatch count, same
// interleaving as an Options-default (kEnv, no env) run.
TEST(ExploreRR, ByteIdenticalToPlainDispatcher) {
  ASSERT_EQ(std::getenv("PTO_SCHED"), nullptr);
  xp::Options dflt;  // kEnv, resolves to rr
  xp::Options rr;
  rr.policy = xp::Policy::kRR;
  RunRecord a = run_counter(4, 200, dflt);
  RunRecord b = run_counter(4, 200, rr);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.clocks, b.clocks);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.total, 800u);
  EXPECT_EQ(b.total, 800u);
}

TEST(ExplorePCT, PreemptsAndStaysCorrect) {
  xp::Options x;
  x.policy = xp::Policy::kPCT;
  x.seed = tu::test_seed(3);
  std::vector<std::uint64_t> sched;
  x.schedule_out = &sched;
  PTO_TRACE_EXPLORE(x);
  RunRecord r = run_counter(4, 200, x);
  EXPECT_EQ(r.total, 800u);          // atomicity survives the adversary
  EXPECT_FALSE(sched.empty());       // ... and the adversary actually acted
}

// Acceptance criterion: replaying a pct:<seed> token reproduces the
// identical schedule.
TEST(ExplorePCT, SameTokenSameSchedule) {
  for (unsigned i = 0; i < 4; ++i) {
    xp::Options x;
    x.policy = xp::Policy::kPCT;
    x.seed = xp::derive_seed(tu::test_seed(11), i);
    PTO_TRACE_EXPLORE(x);
    std::vector<std::uint64_t> s1, s2;
    x.schedule_out = &s1;
    RunRecord a = run_counter(4, 150, x);
    x.schedule_out = &s2;
    RunRecord b = run_counter(4, 150, x);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(a.order, b.order);
    EXPECT_EQ(a.clocks, b.clocks);
  }
}

TEST(ExplorePCT, DifferentSeedsExploreDifferentSchedules) {
  std::vector<std::vector<unsigned>> orders;
  for (unsigned i = 0; i < 4; ++i) {
    xp::Options x;
    x.policy = xp::Policy::kPCT;
    x.seed = xp::derive_seed(tu::test_seed(5), i);
    orders.push_back(run_counter(4, 150, x).order);
  }
  bool any_differ = false;
  for (std::size_t i = 1; i < orders.size(); ++i) {
    if (orders[i] != orders[0]) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(ExploreRand, DeterministicPerSeedAndDiffersFromRR) {
  xp::Options x;
  x.policy = xp::Policy::kRandom;
  x.seed = tu::test_seed(17);
  PTO_TRACE_EXPLORE(x);
  RunRecord a = run_counter(4, 200, x);
  RunRecord b = run_counter(4, 200, x);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.clocks, b.clocks);
  EXPECT_EQ(a.total, 800u);

  xp::Options rr;
  rr.policy = xp::Policy::kRR;
  EXPECT_NE(a.order, run_counter(4, 200, rr).order);
}

// ---------------------------------------------------------------------------
// Dump -> replay (the minimizer's contract)
// ---------------------------------------------------------------------------

TEST(ExploreReplay, DumpedScheduleReplaysByteIdentically) {
  std::string path =
      ::testing::TempDir() + "/pto_sched_dump_" +
      std::to_string(::getpid()) + ".txt";
  xp::Options pct;
  pct.policy = xp::Policy::kPCT;
  pct.seed = tu::test_seed(23);
  PTO_TRACE_EXPLORE(pct);

  ASSERT_EQ(setenv("PTO_SCHED_DUMP", path.c_str(), 1), 0);
  RunRecord a = run_counter(3, 150, pct);
  ASSERT_EQ(unsetenv("PTO_SCHED_DUMP"), 0);

  xp::Options rep;
  rep.policy = xp::Policy::kReplay;
  rep.replay_path = path;
  RunRecord b = run_counter(3, 150, rep);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.clocks, b.clocks);
  EXPECT_EQ(b.total, 450u);
  std::remove(path.c_str());
}

TEST(ExploreReplay, MissingDecisionsFallBackToIncumbent) {
  // An empty decision list is a valid schedule: it degrades to "never
  // preempt", i.e. each thread runs to completion in dispatch order. This
  // is what lets the minimizer delta-debug decisions away.
  std::string path = ::testing::TempDir() + "/pto_sched_empty_" +
                     std::to_string(::getpid()) + ".txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# empty schedule\n", f);
    std::fclose(f);
  }
  xp::Options rep;
  rep.policy = xp::Policy::kReplay;
  rep.replay_path = path;
  RunRecord r = run_counter(3, 100, rep);
  EXPECT_EQ(r.total, 300u);
  // No preemptions: the order is 100 ops of one thread, then the next.
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(r.order[static_cast<std::size_t>(t) * 100 + i],
                static_cast<unsigned>(t));
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// HTM fault injection
// ---------------------------------------------------------------------------

/// Transactional workload: prefix transactions over a strided counter array.
/// Each op increments kSpan counters on distinct cache lines inside one
/// prefix transaction (fallback: the same increments lock-free), so a
/// jittered write capacity below kSpan forces a capacity abort. The test
/// loop is the only sim::rnd() consumer, making the per-thread key streams
/// an exact witness that fault injection never touches the workload RNG.
constexpr int kSlots = 64;
constexpr int kSpan = 6;

struct TxRecord {
  sim::ThreadStats totals;
  std::vector<std::vector<std::int64_t>> keys;
  std::uint64_t sum = 0;
};

TxRecord run_txn(unsigned threads, int ops, const xp::Options& x) {
  TxRecord r;
  r.keys.resize(threads);
  sim::reset_memory();  // byte-compared runs start from pristine line state
  // Static storage: byte-compared runs must see the slots at the same
  // addresses — a per-call heap vector would shift line-sharing patterns
  // (and with them conflict/abort counts) between runs.
  alignas(64) static Atom<SimPlatform, std::uint64_t> slots[kSlots];
  for (auto& s : slots) s.init(0);
  sim::Config cfg;
  cfg.seed = 1;
  cfg.explore = x;
  auto res = sim::run(threads, cfg, [&](unsigned tid) {
    for (int i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(sim::rnd() % kSlots);
      r.keys[tid].push_back(k);
      auto bump = [&](auto&& rmw) {
        for (int j = 0; j < kSpan; ++j) {
          // Stride 8 slots (one line apart for 8-byte atoms) so the write
          // set spans kSpan distinct lines.
          rmw(slots[(k + j * 8) % kSlots]);
        }
        return true;
      };
      pto::prefix<SimPlatform>(
          pto::PrefixPolicy(2),
          [&] {
            return bump([](auto& s) {
              s.store(s.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
            });
          },
          [&] { return bump([](auto& s) { s.fetch_add(1); }); });
    }
  });
  r.totals = res.totals();
  for (auto& s : slots) r.sum += s.load(std::memory_order_relaxed);
  return r;
}

TEST(ExploreFaults, InjectsSpuriousAbortsDeterministically) {
  xp::Options x;  // rr schedule; faults are independent of the policy
  x.policy = xp::Policy::kRR;
  x.fault_seed = tu::test_seed(29);
  x.fault_rate = 0.05;
  PTO_TRACE_EXPLORE(x);
  TxRecord a = run_txn(4, 150, x);
  EXPECT_GT(a.totals.tx_aborts[pto::TX_ABORT_SPURIOUS], 0u);
  EXPECT_GT(a.totals.tx_commits, 0u);  // fallbacks kept the workload going
  EXPECT_EQ(a.sum, 4u * 150u * kSpan);  // every increment landed exactly once

  TxRecord b = run_txn(4, 150, x);
  EXPECT_EQ(a.totals.tx_aborts[pto::TX_ABORT_SPURIOUS],
            b.totals.tx_aborts[pto::TX_ABORT_SPURIOUS]);
  EXPECT_EQ(a.totals.tx_started, b.totals.tx_started);
}

TEST(ExploreFaults, CapacityJitterSurfacesCapacityAborts) {
  xp::Options x;
  x.policy = xp::Policy::kRR;
  x.fault_seed = tu::test_seed(31);
  x.fault_rate = 0.6;  // high rate: most transactions get a jittered budget
  PTO_TRACE_EXPLORE(x);
  TxRecord r = run_txn(4, 200, x);
  EXPECT_GT(r.totals.tx_aborts[pto::TX_ABORT_CAPACITY], 0u);
}

TEST(ExploreFaults, WorkloadRngStreamUntouched) {
  // The fault injector draws from a dedicated per-thread stream, so turning
  // it on must not change a single workload key.
  xp::Options off;
  off.policy = xp::Policy::kRR;
  xp::Options on = off;
  on.fault_seed = 99;
  on.fault_rate = 0.1;
  TxRecord a = run_txn(3, 100, off);
  TxRecord b = run_txn(3, 100, on);
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_GT(b.totals.tx_aborts[pto::TX_ABORT_SPURIOUS], 0u);
}

// ---------------------------------------------------------------------------
// pto::check stays clean under explored schedules
// ---------------------------------------------------------------------------

TEST(ExploreCheck, SkiplistCleanUnderAdversarialSchedules) {
  auto run_skiplist = [](unsigned threads, int ops, const xp::Options& x) {
    pto::SkipList<SimPlatform> s;
    std::vector<typename pto::SkipList<SimPlatform>::ThreadCtx> ctxs;
    for (unsigned t = 0; t < threads; ++t) ctxs.push_back(s.make_ctx());
    sim::Config cfg;
    cfg.seed = 1;
    cfg.explore = x;
    sim::run(threads, cfg, [&](unsigned tid) {
      for (int i = 0; i < ops; ++i) {
        auto k = static_cast<std::int64_t>(sim::rnd() % 32);
        if (i % 2 == 0) {
          s.insert_pto(ctxs[tid], k);
        } else {
          s.remove_pto(ctxs[tid], k);
        }
      }
    });
  };
  // When the process is already env-armed (PTO_CHECK=...), leave the checker
  // on and its findings intact afterwards so the atexit report still covers
  // the whole binary; only a locally-enabled checker is torn back down.
  const bool was_on = pto::check::on();
  pto::check::set_enabled(true);
  pto::check::reset();
  for (const xp::Options& x :
       tu::sweep_policies(tu::test_seed(37), tu::explore_seeds(2), 0.02)) {
    PTO_TRACE_EXPLORE(x);
    run_skiplist(4, 120, x);
  }
  auto found = pto::check::findings();
  if (!was_on) {
    pto::check::set_enabled(false);
    pto::check::reset();
  }
  EXPECT_TRUE(found.empty()) << found.size() << " checker findings";
}

}  // namespace
