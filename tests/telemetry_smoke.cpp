// telemetry_smoke — run one small bench point through the runner with JSON
// stats emission and validate that the record parses and carries the full
// schema (throughput, aborts by every cause, fallback fraction, cycle share).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "benchutil/runner.h"
#include "core/prefix.h"
#include "json_util.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"
#include "telemetry/emit.h"
#include "telemetry/registry.h"

namespace {

using pto::SimPlatform;
using pto::StatsHandle;
namespace sim = pto::sim;
namespace tel = pto::telemetry;
namespace bench = pto::bench;

TEST(TelemetrySmoke, BenchPointEmitsParsableJsonWithRequiredKeys) {
  tel::set_stats_format(tel::StatsFormat::kJson);
  std::ostringstream out;
  tel::set_stats_stream(&out);

  bench::RunnerOptions opts;
  opts.ops_per_thread = 200;
  opts.trials = 1;
  sim::Config cfg;

  auto make_fixture = [] {
    auto counter =
        std::make_shared<pto::Atom<SimPlatform, std::uint64_t>>();
    counter->init(0);
    return std::function<void(unsigned, std::uint64_t)>(
        [counter](unsigned, std::uint64_t ops) {
          for (std::uint64_t i = 0; i < ops; ++i) {
            pto::prefix<SimPlatform>(
                2,
                [&] {
                  auto v = counter->load(std::memory_order_relaxed);
                  counter->store(v + 1, std::memory_order_relaxed);
                },
                [&] { counter->fetch_add(1, std::memory_order_seq_cst); },
                StatsHandle{PTO_TELEMETRY_SITE("smoke.op")});
            sim::op_done();
          }
        });
  };

  double mean = bench::measure_point(opts, /*threads=*/2, cfg, make_fixture,
                                     "smoke", "Counter(PTO)");
  tel::set_stats_stream(nullptr);
  tel::set_stats_format(tel::StatsFormat::kOff);
  EXPECT_GT(mean, 0.0);

  // Exactly one record, one line.
  std::string text = out.str();
  ASSERT_FALSE(text.empty()) << "no record emitted";
  ASSERT_EQ(text.find('\n'), text.size() - 1) << "expected one line:\n"
                                              << text;

  testjson::Value rec;
  ASSERT_TRUE(testjson::parse(text, &rec)) << "record is not valid JSON:\n"
                                           << text;
  ASSERT_TRUE(rec.is_object());

  for (const char* key :
       {"type", "bench", "series", "threads", "trials", "ops", "ops_per_ms",
        "makespan_cycles", "cpu_cycles", "tx_started", "tx_commits",
        "tx_cycles", "tx_cycle_share", "aborts", "abort_total", "fences",
        "fences_elided", "allocs", "frees", "prefix_attempts",
        "prefix_commits", "prefix_fallbacks", "fallback_fraction"}) {
    EXPECT_NE(rec.find(key), nullptr) << "missing key " << key;
  }

  EXPECT_EQ(rec.find("type")->str(), "bench_point");
  EXPECT_EQ(rec.find("bench")->str(), "smoke");
  EXPECT_EQ(rec.find("series")->str(), "Counter(PTO)");
  EXPECT_EQ(rec.find("threads")->num(), 2.0);
  EXPECT_EQ(rec.find("trials")->num(), 1.0);
  EXPECT_EQ(rec.find("ops")->num(), 400.0);  // 2 threads x 200 ops
  EXPECT_GT(rec.find("ops_per_ms")->num(), 0.0);

  // Aborts must be broken out by every cause the codebase knows about.
  const testjson::Value* aborts = rec.find("aborts");
  ASSERT_TRUE(aborts->is_object());
  for (unsigned c = 0; c < pto::kTxCodeCount; ++c) {
    EXPECT_NE(aborts->find(pto::tx_code_name(c)), nullptr)
        << "missing abort cause " << pto::tx_code_name(c);
  }

  // Every op went through the instrumented prefix exactly once.
  const double commits = rec.find("prefix_commits")->num();
  const double fallbacks = rec.find("prefix_fallbacks")->num();
  EXPECT_EQ(commits + fallbacks, 400.0);
  const double frac = rec.find("fallback_fraction")->num();
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
  const double share = rec.find("tx_cycle_share")->num();
  EXPECT_GE(share, 0.0);
  EXPECT_LE(share, 1.0);
}

TEST(TelemetrySmoke, CsvEmitsHeaderOnceAndMatchingColumns) {
  tel::set_stats_format(tel::StatsFormat::kCsv);
  std::ostringstream out;
  tel::set_stats_stream(&out);

  tel::BenchPoint p;
  p.bench = "smoke";
  p.series = "s";
  p.threads = 1;
  p.trials = 1;
  tel::emit_bench_point(p);
  tel::emit_bench_point(p);
  tel::set_stats_stream(nullptr);
  tel::set_stats_format(tel::StatsFormat::kOff);

  std::istringstream lines(out.str());
  std::string header, row1, row2, extra;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row1));
  ASSERT_TRUE(std::getline(lines, row2));
  EXPECT_FALSE(std::getline(lines, extra)) << "header re-emitted";

  auto cols = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_NE(header.find("fallback_fraction"), std::string::npos);
  for (unsigned c = 0; c < pto::kTxCodeCount; ++c) {
    EXPECT_NE(header.find(std::string("aborts_") + pto::tx_code_name(c)),
              std::string::npos);
  }
  EXPECT_EQ(cols(header), cols(row1));
  EXPECT_EQ(cols(header), cols(row2));
}

}  // namespace
