// Skiplist set and SkipQueue: model checks, deterministic concurrent
// consistency, PTO/LF interoperability, and priority-queue semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

#include "ds/skiplist/skiplist.h"
#include "ds/skiplist/skipqueue.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "set_test_util.h"
#include "sim/sim.h"

namespace {

using pto::SimPlatform;
using pto::SkipList;
using pto::SkipQueue;

enum class Mode { kLf, kPto };
const char* mode_name(Mode m) { return m == Mode::kLf ? "lf" : "pto"; }

template <class P>
struct SkipAdapter {
  using Mode = ::Mode;
  using Ctx = typename SkipList<P>::ThreadCtx;
  SkipList<P> ds;

  Ctx make_ctx() { return ds.make_ctx(); }
  bool insert(Ctx& c, Mode m, std::int64_t k) {
    return m == Mode::kLf ? ds.insert_lf(c, k) : ds.insert_pto(c, k);
  }
  bool remove(Ctx& c, Mode m, std::int64_t k) {
    return m == Mode::kLf ? ds.remove_lf(c, k) : ds.remove_pto(c, k);
  }
  bool contains(Ctx& c, Mode, std::int64_t k) { return ds.contains(c, k); }
  bool check_invariants() { return ds.check_invariants(); }
  std::size_t size_slow() { return ds.size_slow(); }
};

class SkipListSequential : public ::testing::TestWithParam<Mode> {};

TEST_P(SkipListSequential, MatchesStdSet) {
  SkipAdapter<SimPlatform> a;
  pto::testutil::sequential_model_check(a, GetParam(), 256, 4000, 11);
}

INSTANTIATE_TEST_SUITE_P(Modes, SkipListSequential,
                         ::testing::Values(Mode::kLf, Mode::kPto),
                         [](const auto& i) { return mode_name(i.param); });

class SkipListConcurrent
    : public ::testing::TestWithParam<std::tuple<Mode, int, int, int>> {};

TEST_P(SkipListConcurrent, PerKeyConsistency) {
  auto [mode, threads, range, seed] = GetParam();
  SkipAdapter<SimPlatform> a;
  pto::testutil::concurrent_consistency(a, mode,
                                        static_cast<unsigned>(threads), range,
                                        400, static_cast<std::uint64_t>(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkipListConcurrent,
    ::testing::Combine(::testing::Values(Mode::kLf, Mode::kPto),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(16, 512),  // high / low contention
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(mode_name(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(SkipList, MixedLfAndPtoThreadsInteroperate) {
  // Half the threads run lock-free ops, half run PTO ops, on the same keys:
  // the fallback path and the transactional path must compose safely.
  SkipAdapter<SimPlatform> a;
  std::vector<std::vector<int>> net(8, std::vector<int>(64, 0));
  pto::sim::Config cfg;
  cfg.seed = 1234;
  auto res = pto::sim::run(8, cfg, [&](unsigned tid) {
    auto ctx = a.make_ctx();
    Mode m = (tid % 2 == 0) ? Mode::kLf : Mode::kPto;
    for (int i = 0; i < 300; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 64);
      if (pto::sim::rnd() % 2 == 0) {
        if (a.insert(ctx, m, k)) ++net[tid][static_cast<std::size_t>(k)];
      } else {
        if (a.remove(ctx, m, k)) --net[tid][static_cast<std::size_t>(k)];
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  auto ctx = a.make_ctx();
  for (int k = 0; k < 64; ++k) {
    int total = 0;
    for (auto& t : net) total += t[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(a.contains(ctx, Mode::kLf, k), total == 1) << "key " << k;
  }
  EXPECT_TRUE(a.check_invariants());
}

TEST(SkipList, PtoFallsBackUnderFailureInjection) {
  SkipAdapter<SimPlatform> a;
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  pto::sim::run(4, cfg, [&](unsigned) {
    auto ctx = a.make_ctx();
    for (int i = 0; i < 200; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 32);
      if (pto::sim::rnd() % 2 == 0) {
        a.ds.insert_pto(ctx, k);
      } else {
        a.ds.remove_pto(ctx, k);
      }
    }
    EXPECT_EQ(ctx.ins_stats.commits + ctx.rem_stats.commits, 0u);
  });
  EXPECT_TRUE(a.check_invariants());
}

TEST(SkipList, NativePlatformSequential) {
  SkipAdapter<pto::NativePlatform> a;
  pto::testutil::sequential_model_check(a, Mode::kPto, 128, 2000, 3);
}

// ---------------------------------------------------------------------------
// SkipQueue (priority queue)
// ---------------------------------------------------------------------------

class SkipQueueTest : public ::testing::TestWithParam<Mode> {};

TEST_P(SkipQueueTest, SequentialPopsAscending) {
  Mode m = GetParam();
  SkipQueue<SimPlatform> q;
  auto ctx = q.make_ctx();
  pto::SplitMix64 rng(5);
  std::multiset<std::int32_t> model;
  for (int i = 0; i < 500; ++i) {
    auto v = static_cast<std::int32_t>(rng.next_below(1000));
    if (m == Mode::kLf) {
      q.push_lf(ctx, v);
    } else {
      q.push_pto(ctx, v);
    }
    model.insert(v);
  }
  // Duplicates must be preserved (uniquified keys).
  EXPECT_EQ(q.size_slow(), model.size());
  std::int32_t last = INT32_MIN;
  while (!model.empty()) {
    auto got = (m == Mode::kLf) ? q.pop_min_lf(ctx) : q.pop_min_pto(ctx);
    ASSERT_TRUE(got.has_value());
    ASSERT_GE(*got, last);
    ASSERT_EQ(*got, *model.begin());
    model.erase(model.begin());
    last = *got;
  }
  EXPECT_FALSE(q.pop_min_lf(ctx).has_value());
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Modes, SkipQueueTest,
                         ::testing::Values(Mode::kLf, Mode::kPto),
                         [](const auto& i) { return mode_name(i.param); });

class SkipQueueConcurrent
    : public ::testing::TestWithParam<std::tuple<Mode, int, int>> {};

// Each thread pushes a known multiset and pops; afterwards, pushed ==
// popped + remaining (value conservation), and nothing is popped twice.
TEST_P(SkipQueueConcurrent, ValueConservation) {
  auto [mode, threads, seed] = GetParam();
  const auto n = static_cast<unsigned>(threads);
  SkipQueue<SimPlatform> q;
  std::vector<std::multiset<std::int32_t>> pushed(n), popped(n);
  pto::sim::Config cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto res = pto::sim::run(n, cfg, [&](unsigned tid) {
    auto ctx = q.make_ctx();
    for (int i = 0; i < 200; ++i) {
      if (pto::sim::rnd() % 2 == 0) {
        auto v = static_cast<std::int32_t>(pto::sim::rnd() % 100);
        if (mode == Mode::kLf) {
          q.push_lf(ctx, v);
        } else {
          q.push_pto(ctx, v);
        }
        pushed[tid].insert(v);
      } else {
        auto got = (mode == Mode::kLf) ? q.pop_min_lf(ctx)
                                       : q.pop_min_pto(ctx);
        if (got.has_value()) popped[tid].insert(*got);
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);

  std::multiset<std::int32_t> all_pushed, all_popped;
  for (unsigned t = 0; t < n; ++t) {
    all_pushed.insert(pushed[t].begin(), pushed[t].end());
    all_popped.insert(popped[t].begin(), popped[t].end());
  }
  auto ctx = q.make_ctx();
  while (auto got = q.pop_min_lf(ctx)) all_popped.insert(*got);
  EXPECT_EQ(all_pushed, all_popped);
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkipQueueConcurrent,
    ::testing::Combine(::testing::Values(Mode::kLf, Mode::kPto),
                       ::testing::Values(2, 4, 8), ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(mode_name(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
