// Linearizability checking: first the checkers themselves (accept/reject
// hand-built histories), then real recorded histories from every set
// structure under deterministic concurrency in every PTO mode, and finally
// set/queue/mound histories recorded under explored (pct/rand) schedules
// with HTM fault injection — the Wing–Gong verifiers run on global-seq
// timestamps, which order observable events under any scheduling policy.
#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "ds/bst/ellen_bst.h"
#include "ds/hashtable/fset_hash.h"
#include "ds/list/harris_list.h"
#include "ds/mound/mound.h"
#include "ds/queue/ms_queue.h"
#include "ds/skiplist/skiplist.h"
#include "explore/explore.h"
#include "explore_util.h"
#include "linearizability.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

namespace {

using pto::SimPlatform;
namespace sim = pto::sim;
namespace xp = pto::explore;
namespace tu = pto::testutil;
using tu::SetOp;
using tu::SetOpKind;

// ---------------------------------------------------------------------------
// Checker self-tests
// ---------------------------------------------------------------------------

TEST(LinChecker, AcceptsSequentialHistory) {
  std::vector<SetOp> h = {
      {SetOpKind::kInsert, 1, true, 0, 10},
      {SetOpKind::kContains, 1, true, 20, 30},
      {SetOpKind::kRemove, 1, true, 40, 50},
      {SetOpKind::kContains, 1, false, 60, 70},
  };
  EXPECT_TRUE(tu::check_set_linearizability(h).linearizable);
}

TEST(LinChecker, RejectsDoubleInsert) {
  // Two successful inserts of the same key, strictly ordered, no remove
  // between them: impossible for a set.
  std::vector<SetOp> h = {
      {SetOpKind::kInsert, 1, true, 0, 10},
      {SetOpKind::kInsert, 1, true, 20, 30},
  };
  EXPECT_FALSE(tu::check_set_linearizability(h).linearizable);
}

TEST(LinChecker, AcceptsConcurrentInsertsOneWins) {
  // Overlapping inserts: one true, one false — fine in either order... the
  // false one must come second; both orders are allowed by timing.
  std::vector<SetOp> h = {
      {SetOpKind::kInsert, 1, true, 0, 100},
      {SetOpKind::kInsert, 1, false, 50, 90},
  };
  EXPECT_TRUE(tu::check_set_linearizability(h).linearizable);
}

TEST(LinChecker, RejectsStaleRead) {
  // Insert completed long before the contains started, nothing removed it:
  // contains=false cannot be linearized.
  std::vector<SetOp> h = {
      {SetOpKind::kInsert, 7, true, 0, 10},
      {SetOpKind::kContains, 7, false, 50, 60},
  };
  EXPECT_FALSE(tu::check_set_linearizability(h).linearizable);
}

TEST(LinChecker, AcceptsReadOverlappingRemove) {
  // The contains overlaps the remove: both answers are legal; false here.
  std::vector<SetOp> h = {
      {SetOpKind::kInsert, 7, true, 0, 10},
      {SetOpKind::kRemove, 7, true, 20, 60},
      {SetOpKind::kContains, 7, false, 30, 40},
  };
  EXPECT_TRUE(tu::check_set_linearizability(h).linearizable);
}

TEST(LinChecker, RejectsFailedRemoveWhilePresent) {
  std::vector<SetOp> h = {
      {SetOpKind::kInsert, 3, true, 0, 10},
      {SetOpKind::kRemove, 3, false, 20, 30},
      {SetOpKind::kRemove, 3, true, 40, 50},
  };
  EXPECT_FALSE(tu::check_set_linearizability(h).linearizable);
}

TEST(LinChecker, KeysAreIndependent) {
  std::vector<SetOp> h = {
      {SetOpKind::kInsert, 1, true, 0, 10},
      {SetOpKind::kInsert, 2, true, 5, 15},
      {SetOpKind::kContains, 1, true, 20, 25},
      {SetOpKind::kContains, 2, true, 20, 25},
      {SetOpKind::kRemove, 1, true, 30, 35},
      {SetOpKind::kContains, 2, true, 40, 45},
  };
  auto r = tu::check_set_linearizability(h);
  EXPECT_TRUE(r.linearizable);
  EXPECT_EQ(r.keys_checked, 2u);
}

// Spec-based checker self-tests (queue / min-PQ sequential specifications).

TEST(SpecChecker, QueueAcceptsFifo) {
  using Q = tu::QueueSpec;
  std::vector<tu::TimedOp<Q>> h = {
      {Q::enq(1), 0, 10},
      {Q::enq(2), 20, 30},
      {Q::deq(1), 40, 50},
      {Q::deq(2), 60, 70},
      {Q::deq(std::nullopt), 80, 90},
  };
  EXPECT_TRUE(tu::check_history<Q>(h));
}

TEST(SpecChecker, QueueRejectsLifo) {
  using Q = tu::QueueSpec;
  std::vector<tu::TimedOp<Q>> h = {
      {Q::enq(1), 0, 10},
      {Q::enq(2), 20, 30},
      {Q::deq(2), 40, 50},  // queue must yield 1 first
  };
  EXPECT_FALSE(tu::check_history<Q>(h));
}

TEST(SpecChecker, QueueAcceptsConcurrentEnqueueEitherOrder) {
  using Q = tu::QueueSpec;
  std::vector<tu::TimedOp<Q>> h = {
      {Q::enq(1), 0, 100},
      {Q::enq(2), 0, 100},  // overlaps: either order linearizes
      {Q::deq(2), 110, 120},
      {Q::deq(1), 130, 140},
  };
  EXPECT_TRUE(tu::check_history<Q>(h));
}

TEST(SpecChecker, QueueRejectsLostElement) {
  using Q = tu::QueueSpec;
  std::vector<tu::TimedOp<Q>> h = {
      {Q::enq(1), 0, 10},
      {Q::deq(std::nullopt), 20, 30},  // the element vanished
  };
  EXPECT_FALSE(tu::check_history<Q>(h));
}

TEST(SpecChecker, PQAcceptsMinOrder) {
  using P = tu::MinPQSpec;
  std::vector<tu::TimedOp<P>> h = {
      {P::insert(5), 0, 10},
      {P::insert(3), 20, 30},
      {P::extract(3), 40, 50},
      {P::extract(5), 60, 70},
      {P::extract(std::nullopt), 80, 90},
  };
  EXPECT_TRUE(tu::check_history<P>(h));
}

TEST(SpecChecker, PQRejectsNonMinExtract) {
  using P = tu::MinPQSpec;
  std::vector<tu::TimedOp<P>> h = {
      {P::insert(5), 0, 10},
      {P::insert(3), 20, 30},
      {P::extract(5), 40, 50},  // 3 is the minimum
  };
  EXPECT_FALSE(tu::check_history<P>(h));
}

TEST(SpecChecker, PQAcceptsExtractOverlappingInsert) {
  using P = tu::MinPQSpec;
  std::vector<tu::TimedOp<P>> h = {
      {P::insert(5), 0, 10},
      {P::insert(3), 20, 100},   // overlaps the extract
      {P::extract(5), 30, 40},   // legal: linearize extract before insert(3)
  };
  EXPECT_TRUE(tu::check_history<P>(h));
}

// ---------------------------------------------------------------------------
// Recorded histories from the real structures
// ---------------------------------------------------------------------------

/// Run `threads` workers over adapter ops, recording a history, and check it.
template <class DoOp>
void record_and_check(unsigned threads, int range, int ops_per_thread,
                      std::uint64_t seed, DoOp&& do_op) {
  tu::HistoryRecorder rec(threads);
  pto::sim::Config cfg;
  cfg.seed = seed;
  auto res = pto::sim::run(threads, cfg, [&](unsigned tid) {
    for (int i = 0; i < ops_per_thread; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % range);
      auto c = static_cast<unsigned>(pto::sim::rnd() % 100);
      SetOpKind kind = c < 30   ? SetOpKind::kContains
                       : c < 65 ? SetOpKind::kInsert
                                : SetOpKind::kRemove;
      rec.record(tid, kind, k, [&] { return do_op(tid, kind, k); });
    }
  });
  ASSERT_EQ(res.uaf_count, 0u);
  auto r = tu::check_set_linearizability(rec.merged());
  EXPECT_TRUE(r.linearizable)
      << "history not linearizable at key " << r.failing_key;
  // Keep the per-key sub-histories within the checker's 64-op window.
  ASSERT_LE(r.largest_subhistory, 64u);
}

class SkiplistLin
    : public ::testing::TestWithParam<std::tuple<bool, int, int>> {};

TEST_P(SkiplistLin, RecordedHistoryLinearizable) {
  auto [pto_mode, threads, seed] = GetParam();
  pto::SkipList<SimPlatform> s;
  std::vector<typename pto::SkipList<SimPlatform>::ThreadCtx> ctxs;
  for (int t = 0; t < threads; ++t) ctxs.push_back(s.make_ctx());
  record_and_check(
      static_cast<unsigned>(threads), 24, 80,
      static_cast<std::uint64_t>(seed),
      [&](unsigned tid, SetOpKind kind, std::int64_t k) {
        auto& ctx = ctxs[tid];
        switch (kind) {
          case SetOpKind::kContains: return s.contains(ctx, k);
          case SetOpKind::kInsert:
            return pto_mode ? s.insert_pto(ctx, k) : s.insert_lf(ctx, k);
          default:
            return pto_mode ? s.remove_pto(ctx, k) : s.remove_lf(ctx, k);
        }
      });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkiplistLin,
    ::testing::Combine(::testing::Bool(), ::testing::Values(3, 6),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "pto" : "lf") + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

const char* const kBstModeNames[] = {"lf", "pto1", "pto2", "pto12"};
const char* const kHashModeNames[] = {"lf", "pto", "inplace"};

class BstLin : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BstLin, RecordedHistoryLinearizable) {
  auto [mode_i, threads, seed] = GetParam();
  auto mode = static_cast<pto::EllenBST<SimPlatform>::Mode>(mode_i);
  pto::EllenBST<SimPlatform> s;
  std::vector<typename pto::EllenBST<SimPlatform>::ThreadCtx> ctxs;
  for (int t = 0; t < threads; ++t) ctxs.push_back(s.make_ctx());
  record_and_check(
      static_cast<unsigned>(threads), 24, 80,
      static_cast<std::uint64_t>(seed),
      [&](unsigned tid, SetOpKind kind, std::int64_t k) {
        auto& ctx = ctxs[tid];
        switch (kind) {
          case SetOpKind::kContains: return s.contains(ctx, k, mode);
          case SetOpKind::kInsert: return s.insert(ctx, k, mode);
          default: return s.remove(ctx, k, mode);
        }
      });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BstLin,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),  // LF/PTO1/PTO2/PTO12
                       ::testing::Values(4, 8), ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(kBstModeNames[std::get<0>(info.param)]) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class HashLin : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HashLin, RecordedHistoryLinearizable) {
  auto [mode_i, threads, seed] = GetParam();
  auto mode = static_cast<pto::FSetHash<SimPlatform>::Mode>(mode_i);
  pto::FSetHash<SimPlatform> s;
  std::vector<typename pto::FSetHash<SimPlatform>::ThreadCtx> ctxs;
  for (int t = 0; t < threads; ++t) ctxs.push_back(s.make_ctx());
  record_and_check(
      static_cast<unsigned>(threads), 24, 80,
      static_cast<std::uint64_t>(seed),
      [&](unsigned tid, SetOpKind kind, std::int64_t k) {
        auto& ctx = ctxs[tid];
        switch (kind) {
          case SetOpKind::kContains: return s.contains(ctx, k, mode);
          case SetOpKind::kInsert: return s.insert(ctx, k, mode);
          default: return s.remove(ctx, k, mode);
        }
      });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HashLin,
    ::testing::Combine(::testing::Values(0, 1, 2),  // LF/PTO/Inplace
                       ::testing::Values(4, 8), ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(kHashModeNames[std::get<0>(info.param)]) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class ListLin : public ::testing::TestWithParam<std::tuple<bool, int, int>> {};

TEST_P(ListLin, RecordedHistoryLinearizable) {
  auto [pto_mode, threads, seed] = GetParam();
  pto::HarrisList<SimPlatform> s;
  std::vector<typename pto::HarrisList<SimPlatform>::ThreadCtx> ctxs;
  for (int t = 0; t < threads; ++t) ctxs.push_back(s.make_ctx());
  record_and_check(
      static_cast<unsigned>(threads), 16, 80,
      static_cast<std::uint64_t>(seed),
      [&](unsigned tid, SetOpKind kind, std::int64_t k) {
        auto& ctx = ctxs[tid];
        switch (kind) {
          case SetOpKind::kContains:
            return pto_mode ? s.contains_pto(ctx, k) : s.contains_lf(ctx, k);
          case SetOpKind::kInsert:
            return pto_mode ? s.insert_pto(ctx, k) : s.insert_lf(ctx, k);
          default:
            return pto_mode ? s.remove_pto(ctx, k) : s.remove_lf(ctx, k);
        }
      });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListLin,
    ::testing::Combine(::testing::Bool(), ::testing::Values(3, 6),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "pto" : "lf") + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Explored schedules: set / queue / mound histories stay linearizable under
// adversarial pct+rand interleavings with mild HTM fault injection. Each
// structure sweeps PTO_EXPLORE_SEEDS seeds (default 32 here, per the
// nightly/smoke contract) across both adversarial policies.
// ---------------------------------------------------------------------------

TEST(ExploredLin, SkiplistSet) {
  const unsigned threads = 3;
  for (const xp::Options& x :
       tu::sweep_policies(tu::test_seed(41), tu::explore_seeds(32), 0.02)) {
    PTO_TRACE_EXPLORE(x);
    pto::SkipList<SimPlatform> s;
    std::vector<typename pto::SkipList<SimPlatform>::ThreadCtx> ctxs;
    for (unsigned t = 0; t < threads; ++t) ctxs.push_back(s.make_ctx());
    tu::HistoryRecorder rec(threads);
    sim::Config cfg;
    cfg.seed = tu::test_seed(41);
    cfg.explore = x;
    auto res = sim::run(threads, cfg, [&](unsigned tid) {
      for (int i = 0; i < 40; ++i) {
        auto k = static_cast<std::int64_t>(sim::rnd() % 12);
        auto c = static_cast<unsigned>(sim::rnd() % 100);
        SetOpKind kind = c < 30   ? SetOpKind::kContains
                         : c < 65 ? SetOpKind::kInsert
                                  : SetOpKind::kRemove;
        rec.record(tid, kind, k, [&] {
          switch (kind) {
            case SetOpKind::kContains: return s.contains(ctxs[tid], k);
            case SetOpKind::kInsert: return s.insert_pto(ctxs[tid], k);
            default: return s.remove_pto(ctxs[tid], k);
          }
        });
      }
    });
    ASSERT_EQ(res.uaf_count, 0u) << tu::note_failure(x, "skiplist uaf");
    auto r = tu::check_set_linearizability(rec.merged());
    ASSERT_TRUE(r.linearizable) << tu::note_failure(
        x, "skiplist history not linearizable at key " +
               std::to_string(r.failing_key));
    ASSERT_LE(r.largest_subhistory, 64u);
  }
}

TEST(ExploredLin, MSQueue) {
  const unsigned threads = 3;
  for (const xp::Options& x :
       tu::sweep_policies(tu::test_seed(43), tu::explore_seeds(32), 0.02)) {
    PTO_TRACE_EXPLORE(x);
    pto::MSQueue<SimPlatform> q;
    std::vector<typename pto::MSQueue<SimPlatform>::ThreadCtx> ctxs;
    for (unsigned t = 0; t < threads; ++t) ctxs.push_back(q.make_ctx());
    // Host-serialized fibers: one shared history vector is safe.
    std::vector<tu::TimedOp<tu::QueueSpec>> hist;
    sim::Config cfg;
    cfg.seed = tu::test_seed(43);
    cfg.explore = x;
    auto res = sim::run(threads, cfg, [&](unsigned tid) {
      for (int i = 0; i < 7; ++i) {
        // Enqueue values are pairwise distinct (tid-tagged) so the spec's
        // state space stays small and FIFO violations are unambiguous.
        if (sim::rnd() % 2 == 0) {
          auto v = static_cast<std::int64_t>(tid) * 1000 + i;
          tu::record_timed<tu::QueueSpec>(hist, [&] {
            q.enqueue_pto(ctxs[tid], v);
            return tu::QueueSpec::enq(v);
          });
        } else {
          tu::record_timed<tu::QueueSpec>(hist, [&] {
            return tu::QueueSpec::deq(q.dequeue_pto(ctxs[tid]));
          });
        }
      }
    });
    ASSERT_EQ(res.uaf_count, 0u) << tu::note_failure(x, "ms_queue uaf");
    ASSERT_LE(hist.size(), 64u);
    ASSERT_TRUE(tu::check_history<tu::QueueSpec>(hist))
        << tu::note_failure(x, "ms_queue history not linearizable");
  }
}

TEST(ExploredLin, Mound) {
  const unsigned threads = 3;
  for (const xp::Options& x :
       tu::sweep_policies(tu::test_seed(47), tu::explore_seeds(32), 0.02)) {
    PTO_TRACE_EXPLORE(x);
    pto::Mound<SimPlatform> m(10);
    std::vector<typename pto::Mound<SimPlatform>::ThreadCtx> ctxs;
    for (unsigned t = 0; t < threads; ++t) ctxs.push_back(m.make_ctx());
    std::vector<tu::TimedOp<tu::MinPQSpec>> hist;
    sim::Config cfg;
    cfg.seed = tu::test_seed(47);
    cfg.explore = x;
    auto res = sim::run(threads, cfg, [&](unsigned tid) {
      for (int i = 0; i < 7; ++i) {
        if (sim::rnd() % 3 != 0) {  // bias toward inserts so extracts hit
          auto v = static_cast<std::int32_t>(tid) * 1000 + i;
          tu::record_timed<tu::MinPQSpec>(hist, [&] {
            m.insert_pto(ctxs[tid], v);
            return tu::MinPQSpec::insert(v);
          });
        } else {
          tu::record_timed<tu::MinPQSpec>(hist, [&] {
            auto got = m.extract_min_pto(ctxs[tid]);
            return tu::MinPQSpec::extract(
                got ? std::optional<std::int64_t>(*got) : std::nullopt);
          });
        }
      }
    });
    ASSERT_EQ(res.uaf_count, 0u) << tu::note_failure(x, "mound uaf");
    ASSERT_LE(hist.size(), 64u);
    ASSERT_TRUE(tu::check_history<tu::MinPQSpec>(hist))
        << tu::note_failure(x, "mound history not linearizable");
  }
}

}  // namespace
