// Shared helpers for simulator-based tests.
#pragma once

#include <cstdint>

#include "platform/platform.h"
#include "platform/sim_platform.h"

namespace pto::testutil {

/// Sense-counting barrier over instrumented atomics; usable by virtual
/// threads inside sim::run.
template <class P>
class Barrier {
 public:
  explicit Barrier(unsigned parties) : parties_(parties) { word_.init(0); }

  void wait() {
    std::uint64_t w = word_.fetch_add(1) + 1;
    auto gen = static_cast<std::uint32_t>(w >> 32);
    if (static_cast<std::uint32_t>(w) == parties_) {
      // Last arriver: bump generation, reset count.
      word_.store(static_cast<std::uint64_t>(gen + 1) << 32);
    } else {
      while (static_cast<std::uint32_t>(word_.load() >> 32) == gen) {
        P::pause();
      }
    }
  }

 private:
  unsigned parties_;
  Atom<P, std::uint64_t> word_;
};

using SimBarrier = Barrier<SimPlatform>;

}  // namespace pto::testutil
