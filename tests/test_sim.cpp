// Simulator internals: scheduling fairness, cost accounting, coherence
// modeling, the HTM model (conflicts, requester-wins, capacity, duration,
// nesting), allocator quarantine and use-after-free detection.
#include <gtest/gtest.h>

#include <vector>

#include "core/prefix.h"
#include "platform/sim_platform.h"
#include "sim/runtime_internal.h"
#include "sim/sim.h"
#include "sim_util.h"

namespace {

using pto::Atom;
using pto::SimPlatform;
namespace sim = pto::sim;

TEST(Sim, ClockAdvancesPerAccess) {
  sim::Config cfg;
  auto res = sim::run(1, cfg, [&](unsigned) {
    Atom<SimPlatform, int> x;
    x.init(0);
    std::uint64_t before = sim::now();
    for (int i = 0; i < 10; ++i) x.store(1, std::memory_order_relaxed);
    EXPECT_GE(sim::now() - before, 10u);  // at least store_hit each
  });
  EXPECT_GT(res.makespan(), 0u);
}

TEST(Sim, SeqCstStoreChargesFence) {
  Atom<SimPlatform, int> x;
  x.init(0);
  auto relaxed = sim::run(1, {}, [&](unsigned) {
    for (int i = 0; i < 100; ++i) x.store(i, std::memory_order_relaxed);
  });
  auto seqcst = sim::run(1, {}, [&](unsigned) {
    for (int i = 0; i < 100; ++i) x.store(i);
  });
  EXPECT_EQ(seqcst.totals().fences, 100u);
  EXPECT_EQ(relaxed.totals().fences, 0u);
  EXPECT_GT(seqcst.makespan(), relaxed.makespan());
}

TEST(Sim, CoherenceMissChargedOnRemoteLine) {
  // Two threads ping-pong one line: every access after the other thread's
  // write costs a miss; a thread-private line stays hit.
  Atom<SimPlatform, int> shared;
  shared.init(0);
  sim::Config cfg;
  auto res = sim::run(2, cfg, [&](unsigned) {
    for (int i = 0; i < 100; ++i) shared.fetch_add(1);
  });
  // 200 RMWs, mostly alternating -> many misses: makespan far above the
  // no-contention cost (200 * cas).
  EXPECT_GT(res.makespan(), 200u * cfg.cost.cas);
}

TEST(Sim, FairnessMinClockScheduling) {
  // A thread doing expensive ops must not starve a cheap one; clocks end
  // within one op of each other per thread workload.
  std::vector<std::uint64_t> final_clock(2);
  Atom<SimPlatform, int> a, b;
  a.init(0);
  b.init(0);
  sim::run(2, {}, [&](unsigned tid) {
    for (int i = 0; i < 50; ++i) {
      if (tid == 0) {
        a.fetch_add(1);  // expensive (RMW)
      } else {
        b.store(1, std::memory_order_relaxed);  // cheap
      }
    }
    final_clock[tid] = sim::now();
  });
  EXPECT_GT(final_clock[0], final_clock[1]);  // more simulated work
}

TEST(Sim, TxConflictRequesterWins) {
  // T0 starts a tx and writes X, then spins; T1 writes X non-transactionally
  // -> T0's tx must abort with CONFLICT.
  Atom<SimPlatform, int> x, flag;
  x.init(0);
  flag.init(0);
  pto::PrefixStats st;
  sim::run(2, {}, [&](unsigned tid) {
    if (tid == 0) {
      int r = pto::prefix<SimPlatform>(
          1,
          [&]() -> int {
            x.store(1, std::memory_order_relaxed);
            flag.store(1, std::memory_order_relaxed);  // does not escape: tx
            // Wait long enough that T1 interleaves.
            for (int i = 0; i < 200; ++i) SimPlatform::pause();
            return 1;
          },
          [&]() -> int { return 0; }, &st);
      EXPECT_EQ(r, 0);  // must have been aborted by T1's write
    } else {
      for (int i = 0; i < 100; ++i) SimPlatform::pause();
      x.store(42, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(st.aborts[pto::TX_ABORT_CONFLICT], 1u);
  int v = 0;
  sim::run(1, {}, [&](unsigned) { v = x.load(); });
  EXPECT_EQ(v, 42);  // T0's transactional store was rolled back
}

TEST(Sim, TxReaderAbortedByWriter) {
  Atom<SimPlatform, int> x;
  x.init(7);
  pto::PrefixStats st;
  sim::run(2, {}, [&](unsigned tid) {
    if (tid == 0) {
      pto::prefix<SimPlatform>(
          1,
          [&]() -> int {
            int v = x.load(std::memory_order_relaxed);
            for (int i = 0; i < 200; ++i) SimPlatform::pause();
            return v;
          },
          [&]() -> int { return -1; }, &st);
    } else {
      for (int i = 0; i < 100; ++i) SimPlatform::pause();
      x.store(8, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(st.aborts[pto::TX_ABORT_CONFLICT], 1u);
}

TEST(Sim, TxCapacityAbort) {
  sim::Config cfg;
  cfg.htm.max_write_lines = 8;
  // One cell per cache line, so 64 cells = 64 write-set lines.
  std::vector<pto::CacheAligned<Atom<SimPlatform, int>>> cells(64);
  for (auto& c : cells) c.value.init(0);
  pto::PrefixStats st;
  sim::run(1, cfg, [&](unsigned) {
    int r = pto::prefix<SimPlatform>(
        2,
        [&]() -> int {
          for (auto& c : cells) c.value.store(1, std::memory_order_relaxed);
          return 1;
        },
        [&]() -> int { return 0; }, &st);
    EXPECT_EQ(r, 0);
  });
  EXPECT_GE(st.aborts[pto::TX_ABORT_CAPACITY], 1u);
  // Capacity aborts are not retried by default.
  EXPECT_EQ(st.attempts, 1u);
}

TEST(Sim, TxDurationAbort) {
  sim::Config cfg;
  cfg.htm.max_duration = 500;
  Atom<SimPlatform, int> x;
  x.init(0);
  pto::PrefixStats st;
  sim::run(1, cfg, [&](unsigned) {
    pto::prefix<SimPlatform>(
        1,
        [&]() -> int {
          for (int i = 0; i < 1000; ++i) {
            x.store(i, std::memory_order_relaxed);
          }
          return 1;
        },
        [&]() -> int { return 0; }, &st);
  });
  EXPECT_EQ(st.aborts[pto::TX_ABORT_DURATION], 1u);
}

TEST(Sim, TxRollbackRestoresMultipleWords) {
  std::vector<Atom<SimPlatform, std::uint64_t>> cells(16);
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].init(i);
  sim::run(1, {}, [&](unsigned) {
    pto::prefix<SimPlatform>(
        1,
        [&]() -> int {
          for (auto& c : cells) c.store(999, std::memory_order_relaxed);
          SimPlatform::tx_abort<pto::TX_CODE_POLICY>();
        },
        [&]() -> int { return 0; });
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(cells[i].load(), i);
    }
  });
}

TEST(Sim, FlatNestingCommitsAtOutermost) {
  Atom<SimPlatform, int> x;
  x.init(0);
  auto res = sim::run(1, {}, [&](unsigned) {
    pto::prefix<SimPlatform>(
        1,
        [&] {
          x.store(1, std::memory_order_relaxed);
          pto::prefix<SimPlatform>(
              1, [&] { x.store(2, std::memory_order_relaxed); }, [&] {});
          x.store(3, std::memory_order_relaxed);
        },
        [&] {});
    EXPECT_EQ(x.load(), 3);
  });
  // One hardware transaction: a single begin/commit pair.
  EXPECT_EQ(res.totals().tx_started, 1u);
  EXPECT_EQ(res.totals().tx_commits, 1u);
}

TEST(Sim, UseAfterFreeDetected) {
  auto* cell = SimPlatform::make<Atom<SimPlatform, int>>();
  cell->init(5);
  auto res = sim::run(1, {}, [&](unsigned) {
    cell->store(6, std::memory_order_relaxed);
    SimPlatform::destroy(cell);
    (void)cell->load(std::memory_order_relaxed);  // deliberate UAF
  });
  EXPECT_GE(res.uaf_count, 1u);
}

TEST(Sim, FreeDoomsTransactionHoldingLine) {
  // A tx reads a node; another thread frees it; the tx must abort (this is
  // what makes epoch elision in transactions safe).
  auto* cell = SimPlatform::make<Atom<SimPlatform, int>>();
  cell->init(5);
  pto::PrefixStats st;
  auto res = sim::run(2, {}, [&](unsigned tid) {
    if (tid == 0) {
      pto::prefix<SimPlatform>(
          1,
          [&]() -> int {
            int v = cell->load(std::memory_order_relaxed);
            for (int i = 0; i < 200; ++i) SimPlatform::pause();
            return v;
          },
          [&]() -> int { return -1; }, &st);
    } else {
      for (int i = 0; i < 100; ++i) SimPlatform::pause();
      SimPlatform::destroy(cell);
    }
  });
  EXPECT_EQ(st.aborts[pto::TX_ABORT_CONFLICT], 1u);
  EXPECT_EQ(res.uaf_count, 0u);  // the tx never touched freed memory
}

TEST(Sim, DeterminismAcrossRichWorkload) {
  auto once = [] {
    // Determinism is relative to the global memory state (the line table
    // persists across runs so fixtures survive); reset for a clean slate.
    sim::reset_memory();
    Atom<SimPlatform, std::uint64_t> acc;
    acc.init(0);
    pto::testutil::SimBarrier bar(4);
    sim::Config cfg;
    cfg.seed = 77;
    auto res = sim::run(4, cfg, [&](unsigned tid) {
      for (int i = 0; i < 100; ++i) {
        pto::prefix<SimPlatform>(
            2,
            [&] {
              acc.store(acc.load(std::memory_order_relaxed) + tid + 1,
                        std::memory_order_relaxed);
            },
            [&] { acc.fetch_add(tid + 1); });
        if (i == 50) bar.wait();
      }
    });
    auto t = res.totals();
    return res.makespan() ^ (t.tx_commits << 20) ^ (t.total_aborts() << 40);
  };
  EXPECT_EQ(once(), once());
}

TEST(Sim, SpuriousAbortInjectionRate) {
  sim::Config cfg;
  cfg.htm.spurious_abort_prob = 0.05;
  Atom<SimPlatform, int> x;
  x.init(0);
  pto::PrefixStats st;
  sim::run(1, cfg, [&](unsigned) {
    for (int i = 0; i < 2000; ++i) {
      pto::prefix<SimPlatform>(
          1, [&] { x.store(i, std::memory_order_relaxed); }, [&] {}, &st);
    }
  });
  // Roughly 5% of single-access transactions die (loose bounds).
  EXPECT_GT(st.aborts[pto::TX_ABORT_SPURIOUS], 20u);
  EXPECT_LT(st.aborts[pto::TX_ABORT_SPURIOUS], 500u);
}

TEST(Sim, ThreadCountLimits) {
  EXPECT_THROW(sim::run(0, {}, [](unsigned) {}), std::invalid_argument);
  EXPECT_THROW(sim::run(pto::kMaxThreads + 1, {}, [](unsigned) {}),
               std::invalid_argument);
  // 65 threads — one past the old single-word limit — is now a valid run.
  auto res = sim::run(65, {}, [](unsigned) {});
  EXPECT_EQ(res.stats.size(), 65u);
}

TEST(Sim, RuntimeConstructorRejectsOutOfRangeThreads) {
  // Defense in depth below run(): past kMaxThreads a tid would index out of
  // the per-line ThreadSet bitsets, so the Runtime constructor must reject.
  namespace in = pto::sim::internal;
  sim::Config cfg;
  EXPECT_THROW(in::Runtime(pto::kMaxThreads + 1, cfg), std::invalid_argument);
  EXPECT_THROW(in::Runtime(0, cfg), std::invalid_argument);
  EXPECT_NO_THROW(in::Runtime(pto::kMaxThreads, cfg));
}

TEST(Sim, MaxThreadsBoundaryRuns) {
  // All 64 virtual threads touch one shared line; the highest thread id
  // exercises the top bit of the first word of every per-line mask.
  Atom<SimPlatform, std::uint64_t> x;
  x.init(0);
  auto res = sim::run(64, {}, [&](unsigned) { x.fetch_add(1); });
  std::uint64_t v = 0;
  sim::run(1, {}, [&](unsigned) { v = x.load(); });
  EXPECT_EQ(v, 64u);
  EXPECT_EQ(res.stats.size(), 64u);
}

TEST(Sim, WideThreadCountsShareOneLine) {
  // Word-boundary and high thread counts all hammer one shared line, so the
  // doom/conflict path exercises multi-word sharer masks end to end.
  for (unsigned n : {65u, 128u, 256u}) {
    Atom<SimPlatform, std::uint64_t> x;
    x.init(0);
    auto res = sim::run(n, {}, [&](unsigned) { x.fetch_add(1); });
    std::uint64_t v = 0;
    sim::run(1, {}, [&](unsigned) { v = x.load(); });
    EXPECT_EQ(v, n) << "n=" << n;
    EXPECT_EQ(res.stats.size(), n) << "n=" << n;
  }
}

TEST(Sim, MaxThreadsScaleOutRuns) {
  // The full 1024-vthread capacity: every thread bumps a private counter and
  // the last word's top bit of the line masks gets exercised via a shared
  // flag line.
  Atom<SimPlatform, std::uint64_t> shared;
  shared.init(0);
  auto res = sim::run(pto::kMaxThreads, {}, [&](unsigned tid) {
    if (tid == pto::kMaxThreads - 1 || tid == 0) shared.fetch_add(1);
  });
  std::uint64_t v = 0;
  sim::run(1, {}, [&](unsigned) { v = shared.load(); });
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(res.stats.size(), static_cast<std::size_t>(pto::kMaxThreads));
}

TEST(Sim, DeterministicScheduleAtWideThreadCounts) {
  // Scheduler invariant past the single-word fast path: identical seeds give
  // identical makespans and per-thread cycle vectors at 65/256/1024 threads.
  for (unsigned n : {65u, 256u, 1024u}) {
    sim::Config cfg;
    cfg.seed = 2026;
    auto work = [&](unsigned tid) {
      Atom<SimPlatform, std::uint64_t> local;
      local.init(tid);
      for (int i = 0; i < 4; ++i) local.fetch_add(1);
    };
    // Fiber stacks host the Atoms above, and stack placement can differ
    // between runs; reset the line table so both runs start from identical
    // (empty) line metadata, as the benches do between measured points.
    sim::reset_memory();
    auto a = sim::run(n, cfg, work);
    sim::reset_memory();
    auto b = sim::run(n, cfg, work);
    EXPECT_EQ(a.makespan(), b.makespan()) << "n=" << n;
    ASSERT_EQ(a.clocks.size(), b.clocks.size()) << "n=" << n;
    for (std::size_t i = 0; i < a.clocks.size(); ++i) {
      EXPECT_EQ(a.clocks[i], b.clocks[i]) << "n=" << n << " tid=" << i;
    }
    for (std::size_t i = 0; i < a.stats.size(); ++i) {
      EXPECT_EQ(a.stats[i].dispatches, b.stats[i].dispatches)
          << "n=" << n << " tid=" << i;
    }
  }
}

TEST(Sim, NoDispatchWhileCurrentThreadIsMinimum) {
  // Thread 0 does cheap private stores; thread 1 finishes immediately. After
  // thread 1 is gone, thread 0 is the clock minimum at every charge() and
  // must never be switched out again: exactly one re-dispatch.
  pto::CacheAligned<Atom<SimPlatform, std::uint64_t>> priv;
  priv.value.init(0);
  auto res = sim::run(2, {}, [&](unsigned tid) {
    if (tid == 0) {
      for (int i = 0; i < 1000; ++i) {
        priv.value.store(1, std::memory_order_relaxed);
      }
    }
  });
  // t0 dispatched first, yields once to t1 (clock 0 < t0's first charge),
  // t1 finishes without charging, t0 runs the rest uninterrupted.
  EXPECT_EQ(res.stats[0].dispatches, 2u);
  EXPECT_EQ(res.stats[1].dispatches, 1u);
}

TEST(Sim, DispatchesCountedUnderContention) {
  // Sanity on the counter itself: with two threads ping-ponging one line,
  // both yield constantly; every thread is dispatched at least once and
  // accumulate() sums the counter.
  Atom<SimPlatform, std::uint64_t> shared;
  shared.init(0);
  auto res = sim::run(2, {}, [&](unsigned) {
    for (int i = 0; i < 50; ++i) shared.fetch_add(1);
  });
  EXPECT_GE(res.stats[0].dispatches, 2u);
  EXPECT_GE(res.stats[1].dispatches, 1u);
  EXPECT_EQ(res.totals().dispatches,
            res.stats[0].dispatches + res.stats[1].dispatches);
}

TEST(Sim, GoldenCyclesRichWorkload) {
  // Golden determinism contract: simulated cycles for a rich workload
  // (transactions, aborts, fallbacks, allocation, a barrier) are part of the
  // repo's correctness surface. These constants were captured from the
  // pre-rewrite O(T)-scan/ucontext/unordered_map simulator; the O(1)
  // scheduler, direct fiber switches, and dense line table must not move
  // them by a single cycle. If an *intentional* cost-model change shifts
  // them, recapture and justify in the commit message.
  sim::reset_memory();
  sim::Config cfg;
  cfg.seed = 2026;
  cfg.htm.max_duration = 5'000;
  std::vector<pto::CacheAligned<Atom<SimPlatform, std::uint64_t>>> cells(64);
  for (auto& c : cells) c.value.init(0);
  pto::testutil::SimBarrier bar(4);
  auto res = sim::run(4, cfg, [&](unsigned tid) {
    for (int i = 0; i < 300; ++i) {
      auto a = static_cast<unsigned>(sim::rnd() % cells.size());
      auto b = static_cast<unsigned>(sim::rnd() % cells.size());
      if (i % 7 == 0) {
        auto* n = SimPlatform::make<Atom<SimPlatform, std::uint64_t>>();
        n->init(i);
        n->store(n->load(std::memory_order_relaxed) + tid,
                 std::memory_order_relaxed);
        SimPlatform::destroy(n);
      }
      pto::prefix<SimPlatform>(
          2,
          [&] {
            auto v = cells[a].value.load(std::memory_order_relaxed);
            cells[b].value.store(v + tid + 1, std::memory_order_relaxed);
          },
          [&] {
            cells[b].value.fetch_add(tid + 1, std::memory_order_seq_cst);
          });
      if (i == 150) bar.wait();
      sim::op_done();
    }
  });
  auto t = res.totals();
  EXPECT_EQ(res.makespan(), 48945u);
  EXPECT_EQ(t.loads, 1469u);
  EXPECT_EQ(t.stores, 1420u);
  EXPECT_EQ(t.cas_ops, 0u);
  EXPECT_EQ(t.rmws, 16u);
  EXPECT_EQ(t.tx_commits, 1192u);
  EXPECT_EQ(t.total_aborts(), 69u);
  EXPECT_EQ(t.allocs, 172u);
  EXPECT_EQ(t.frees, 172u);
  EXPECT_EQ(t.ops_completed, 1200u);
  EXPECT_EQ(res.uaf_count, 0u);
}

}  // namespace
