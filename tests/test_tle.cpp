// Generic TLE wrapper: sequential model checks, concurrent consistency under
// elision + lock fallback, subscription semantics, and the lemming effect.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.h"
#include "ds/tle/tle.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

namespace {

using pto::SeqHashSet;
using pto::SimPlatform;
using pto::TLE;

using TleSet = TLE<SimPlatform, SeqHashSet<SimPlatform>>;

TEST(Tle, SequentialMatchesStdSet) {
  TleSet t(256);
  std::set<std::int64_t> model;
  pto::SplitMix64 rng(5);
  for (int i = 0; i < 3000; ++i) {
    auto k = static_cast<std::int64_t>(rng.next_below(512));
    switch (rng.next_percent() % 3) {
      case 0:
        ASSERT_EQ(t.execute([&](auto& s) { return s.insert(k); }),
                  model.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.execute([&](auto& s) { return s.remove(k); }),
                  model.erase(k) == 1);
        break;
      default:
        ASSERT_EQ(t.execute([&](auto& s) { return s.contains(k); }),
                  model.count(k) == 1);
    }
  }
  EXPECT_EQ(t.unsafe_seq().size_slow(), model.size());
}

class TleConcurrent : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TleConcurrent, PerKeyConsistency) {
  auto [threads, seed] = GetParam();
  const auto n = static_cast<unsigned>(threads);
  TleSet t(256);
  constexpr int kRange = 64;
  std::vector<std::vector<int>> net(n, std::vector<int>(kRange, 0));
  pto::sim::Config cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto res = pto::sim::run(n, cfg, [&](unsigned tid) {
    for (int i = 0; i < 300; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      if (pto::sim::rnd() % 2 == 0) {
        if (t.execute([&](auto& s) { return s.insert(k); })) {
          ++net[tid][static_cast<std::size_t>(k)];
        }
      } else {
        if (t.execute([&](auto& s) { return s.remove(k); })) {
          --net[tid][static_cast<std::size_t>(k)];
        }
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  for (int k = 0; k < kRange; ++k) {
    int total = 0;
    for (auto& v : net) total += v[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(t.execute([&](auto& s) { return s.contains(k); }), total == 1);
  }
  t.unsafe_seq().collect_garbage_at_quiescence();
}

INSTANTIATE_TEST_SUITE_P(Sweep, TleConcurrent,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(1, 2, 3)),
                         [](const auto& info) {
                           return "t" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(Tle, LockFallbackAbortsElidedSections) {
  // While one thread sits in the locked fallback, elided transactions must
  // abort (eager subscription): force the fallback via failure injection on
  // one thread only... simplest: full injection makes ALL ops take the lock
  // and results must stay correct.
  TleSet t(64);
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  pto::PrefixStats st;
  pto::sim::run(4, cfg, [&](unsigned) {
    for (int i = 0; i < 200; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 32);
      t.execute([&](auto& s) { return s.insert(k); }, &st);
      t.execute([&](auto& s) { return s.remove(k); }, &st);
    }
  });
  EXPECT_EQ(st.commits, 0u);
  EXPECT_EQ(st.fallbacks, 1600u);
}

TEST(Tle, SubscriptionPreventsElisionWhileLocked) {
  // Thread 1 holds the lock (its transactions are injected to fail); thread
  // 0's elided attempts during that window must abort on the subscription
  // check, never observing partial state.
  TleSet t(64);
  pto::sim::Config cfg;
  cfg.seed = 3;
  pto::PrefixStats st0;
  pto::sim::run(2, cfg, [&](unsigned tid) {
    for (int i = 0; i < 300; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 8);
      if (tid == 0) {
        bool present_then = t.execute(
            [&](auto& s) {
              bool in = s.contains(k);
              // Within one atomic section the answer must be stable.
              return in == s.contains(k);
            },
            &st0);
        ASSERT_TRUE(present_then);
      } else {
        t.execute([&](auto& s) { return s.insert(k); });
        t.execute([&](auto& s) { return s.remove(k); });
      }
    }
  });
  // Mixed commits and (conflict or subscription) aborts are both expected.
  EXPECT_GT(st0.commits + st0.fallbacks, 0u);
}

TEST(Tle, NativePlatform) {
  TLE<pto::NativePlatform, SeqHashSet<pto::NativePlatform>> t(128);
  std::set<std::int64_t> model;
  pto::SplitMix64 rng(8);
  for (int i = 0; i < 2000; ++i) {
    auto k = static_cast<std::int64_t>(rng.next_below(256));
    if (rng.next_percent() < 50) {
      ASSERT_EQ(t.execute([&](auto& s) { return s.insert(k); }),
                model.insert(k).second);
    } else {
      ASSERT_EQ(t.execute([&](auto& s) { return s.remove(k); }),
                model.erase(k) == 1);
    }
  }
  EXPECT_EQ(t.unsafe_seq().size_slow(), model.size());
}

}  // namespace
