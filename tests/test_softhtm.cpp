// Native HTM layer: backend probing, SoftHTM transactional semantics
// (atomicity, rollback, validation, read-own-writes, nesting), the
// strongly-atomic non-transactional accessors, and real-thread stress.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/prefix.h"
#include "htm/htm.h"
#include "htm/softhtm.h"
#include "platform/native_platform.h"

namespace {

using pto::Atom;
using pto::NativePlatform;
namespace soft = pto::softhtm;

/// Run `fn` as a SoftHTM transaction directly (independent of the backend
/// the process probed).
template <class Fn>
unsigned soft_tx(Fn&& fn) {
  int j = setjmp(soft::tls_tx().env);
  if (j != 0) return static_cast<unsigned>(j);
  unsigned s = soft::begin();
  EXPECT_EQ(s, pto::TX_STARTED);
  fn();
  soft::commit();
  return pto::TX_STARTED;
}

TEST(SoftHtm, CommitPublishesAllWrites) {
  std::atomic<int> a{0}, b{0};
  unsigned s = soft_tx([&] {
    soft::tx_store(a, 1);
    soft::tx_store(b, 2);
    // Buffered: not visible before commit.
    EXPECT_EQ(a.load(), 0);
  });
  EXPECT_EQ(s, pto::TX_STARTED);
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
}

TEST(SoftHtm, ReadOwnWrites) {
  std::atomic<int> a{5};
  soft_tx([&] {
    soft::tx_store(a, 7);
    EXPECT_EQ(soft::tx_load(a), 7);
    soft::tx_store(a, 9);
    EXPECT_EQ(soft::tx_load(a), 9);
  });
  EXPECT_EQ(a.load(), 9);
}

TEST(SoftHtm, ExplicitAbortDiscardsWrites) {
  std::atomic<int> a{5};
  unsigned s = soft_tx([&] {
    soft::tx_store(a, 7);
    soft::abort_tx(pto::TX_ABORT_EXPLICIT, pto::TX_CODE_POLICY);
  });
  EXPECT_EQ(s, pto::TX_ABORT_EXPLICIT);
  EXPECT_EQ(a.load(), 5);
  EXPECT_EQ(soft::last_user_code(), pto::TX_CODE_POLICY);
}

TEST(SoftHtm, ConflictingNtStoreAborts) {
  std::atomic<int> a{1};
  unsigned s = soft_tx([&] {
    EXPECT_EQ(soft::tx_load(a), 1);
    // Another "thread" (here: same thread via the nt accessor) changes the
    // value after our read: commit-time validation must fail... but since
    // our tx has no writes it validates only on clock motion. Force a
    // write so commit validates.
    soft::tx_store(a, 10);
    soft::nt_store(a, 2);  // bumps the global clock + changes the value
  });
  EXPECT_EQ(s, pto::TX_ABORT_CONFLICT);
  EXPECT_EQ(a.load(), 2);  // the nt store survived; the tx did not
}

TEST(SoftHtm, FlatNesting) {
  std::atomic<int> a{0};
  soft_tx([&] {
    soft::tx_store(a, 1);
    EXPECT_EQ(soft::begin(), pto::TX_STARTED);  // nested
    soft::tx_store(a, 2);
    soft::commit();  // inner commit: nothing published yet
    EXPECT_EQ(a.load(), 0);
    soft::tx_store(a, 3);
  });
  EXPECT_EQ(a.load(), 3);
}

TEST(SoftHtm, NtAccessorsAreLinearizable) {
  std::atomic<std::uint64_t> x{0};
  std::uint64_t expect = 0;
  EXPECT_TRUE(soft::nt_cas(x, expect, std::uint64_t{5}));
  EXPECT_EQ(soft::nt_load(x), 5u);
  EXPECT_EQ(soft::nt_fetch_add(x, std::uint64_t{3}), 5u);
  EXPECT_EQ(soft::nt_load(x), 8u);
  expect = 7;
  EXPECT_FALSE(soft::nt_cas(x, expect, std::uint64_t{9}));
  EXPECT_EQ(expect, 8u);
}

TEST(SoftHtm, RealThreadsMultiWordInvariant) {
  // 4 real threads keep (a, b) equal through prefix transactions under
  // whatever backend the machine offers; a checker thread uses the same
  // platform accessors and must never observe a != b.
  Atom<NativePlatform, std::uint64_t> a, b;
  a.init(0);
  b.init(0);
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread checker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Read the pair inside a transaction for a consistent snapshot.
      auto pair_equal = pto::prefix<NativePlatform>(
          8,
          [&]() -> bool {
            return a.load(std::memory_order_relaxed) ==
                   b.load(std::memory_order_relaxed);
          },
          [&]() -> bool { return true; /* inconclusive, skip */ });
      if (!pair_equal) violations.fetch_add(1);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20'000; ++i) {
        pto::prefix<NativePlatform>(
            8,
            [&] {
              auto v = a.load(std::memory_order_relaxed);
              a.store(v + 1, std::memory_order_relaxed);
              b.store(b.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
            },
            [&] {
              // Lock-free-ish fallback preserving the invariant atomically
              // is impossible without a tx; use nt accessors under SoftHTM,
              // or retry the tx. Here: spin on the fast path.
              for (;;) {
                bool done = pto::prefix<NativePlatform>(
                    64,
                    [&]() -> bool {
                      auto v = a.load(std::memory_order_relaxed);
                      a.store(v + 1, std::memory_order_relaxed);
                      b.store(b.load(std::memory_order_relaxed) + 1,
                              std::memory_order_relaxed);
                      return true;
                    },
                    [&]() -> bool { return false; });
                if (done) return;
                std::this_thread::yield();
              }
            });
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  checker.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(a.load(), 80'000u);
  EXPECT_EQ(b.load(), 80'000u);
}

TEST(Htm, BackendProbeIsSticky) {
  auto b1 = pto::htm::backend();
  auto b2 = pto::htm::backend();
  EXPECT_EQ(b1, b2);
  if (b1 == pto::htm::Backend::kRTM) {
    EXPECT_TRUE(pto::htm::strongly_atomic());
  } else {
    EXPECT_FALSE(pto::htm::strongly_atomic());
  }
}

TEST(Htm, InTxReflectsState) {
  EXPECT_FALSE(NativePlatform::in_tx());
  bool was_in_tx = false;
  pto::prefix<NativePlatform>(
      4, [&] { was_in_tx = NativePlatform::in_tx(); }, [&] {});
  EXPECT_FALSE(NativePlatform::in_tx());
  (void)was_in_tx;  // rolled back under RTM on abort; only meaningful if committed
}

}  // namespace
