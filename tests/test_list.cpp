// Harris linked-list set: model checks and deterministic concurrent
// consistency for the lock-free baseline and the PTO acceleration.
#include <gtest/gtest.h>

#include <tuple>

#include "ds/list/harris_list.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "set_test_util.h"
#include "sim/sim.h"

namespace {

using pto::HarrisList;
using pto::SimPlatform;

enum class Mode { kLf, kPto };
const char* mode_name(Mode m) { return m == Mode::kLf ? "lf" : "pto"; }

template <class P>
struct ListAdapter {
  using Mode = ::Mode;
  using Ctx = typename HarrisList<P>::ThreadCtx;
  HarrisList<P> ds;

  Ctx make_ctx() { return ds.make_ctx(); }
  bool insert(Ctx& c, Mode m, std::int64_t k) {
    return m == Mode::kLf ? ds.insert_lf(c, k) : ds.insert_pto(c, k);
  }
  bool remove(Ctx& c, Mode m, std::int64_t k) {
    return m == Mode::kLf ? ds.remove_lf(c, k) : ds.remove_pto(c, k);
  }
  bool contains(Ctx& c, Mode m, std::int64_t k) {
    return m == Mode::kLf ? ds.contains_lf(c, k) : ds.contains_pto(c, k);
  }
  bool check_invariants() { return ds.check_invariants(); }
  std::size_t size_slow() { return ds.size_slow(); }
};

class ListSequential : public ::testing::TestWithParam<Mode> {};

TEST_P(ListSequential, MatchesStdSet) {
  ListAdapter<SimPlatform> a;
  pto::testutil::sequential_model_check(a, GetParam(), 128, 4000, 61);
}

INSTANTIATE_TEST_SUITE_P(Modes, ListSequential,
                         ::testing::Values(Mode::kLf, Mode::kPto),
                         [](const auto& i) { return mode_name(i.param); });

class ListConcurrent
    : public ::testing::TestWithParam<std::tuple<Mode, int, int, int>> {};

TEST_P(ListConcurrent, PerKeyConsistency) {
  auto [mode, threads, range, seed] = GetParam();
  ListAdapter<SimPlatform> a;
  pto::testutil::concurrent_consistency(a, mode,
                                        static_cast<unsigned>(threads), range,
                                        300, static_cast<std::uint64_t>(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListConcurrent,
    ::testing::Combine(::testing::Values(Mode::kLf, Mode::kPto),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(8, 128),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(mode_name(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(List, MixedModesInteroperate) {
  ListAdapter<SimPlatform> a;
  std::vector<std::vector<int>> net(6, std::vector<int>(32, 0));
  pto::sim::Config cfg;
  cfg.seed = 17;
  auto res = pto::sim::run(6, cfg, [&](unsigned tid) {
    auto ctx = a.make_ctx();
    Mode m = tid % 2 == 0 ? Mode::kLf : Mode::kPto;
    for (int i = 0; i < 250; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 32);
      if (pto::sim::rnd() % 2 == 0) {
        if (a.insert(ctx, m, k)) ++net[tid][static_cast<std::size_t>(k)];
      } else {
        if (a.remove(ctx, m, k)) --net[tid][static_cast<std::size_t>(k)];
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  auto ctx = a.make_ctx();
  for (int k = 0; k < 32; ++k) {
    int total = 0;
    for (auto& t : net) total += t[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(a.contains(ctx, Mode::kLf, k), total == 1) << "key " << k;
  }
  EXPECT_TRUE(a.check_invariants());
}

TEST(List, PtoRemoveSkipsIntermediateMark) {
  // An uncontended PTO remove commits mark+unlink in one transaction: no
  // CAS at all on the fast path.
  ListAdapter<SimPlatform> a;
  auto res = pto::sim::run(1, {}, [&](unsigned) {
    auto ctx = a.make_ctx();
    for (int i = 0; i < 100; ++i) a.ds.insert_pto(ctx, i);
    for (int i = 0; i < 100; ++i) a.ds.remove_pto(ctx, i);
    EXPECT_EQ(ctx.rem_stats.commits, 100u);
    EXPECT_EQ(ctx.rem_stats.fallbacks, 0u);
  });
  EXPECT_LE(res.totals().cas_ops, 8u);  // epoch bookkeeping only
}

TEST(List, FailureInjectionFallsBack) {
  ListAdapter<SimPlatform> a;
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  pto::sim::run(2, cfg, [&](unsigned) {
    auto ctx = a.make_ctx();
    for (int i = 0; i < 150; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 16);
      if (pto::sim::rnd() % 2 == 0) {
        a.ds.insert_pto(ctx, k);
      } else {
        a.ds.remove_pto(ctx, k);
      }
    }
    EXPECT_EQ(ctx.ins_stats.commits + ctx.rem_stats.commits, 0u);
  });
  EXPECT_TRUE(a.check_invariants());
}

TEST(List, NativePlatform) {
  ListAdapter<pto::NativePlatform> a;
  pto::testutil::sequential_model_check(a, Mode::kPto, 64, 1500, 9);
}

}  // namespace
