// pto::obs core: histogram bucket geometry, quantile accuracy against a
// sorted-vector oracle, merge algebra, the latency-site recording pipeline,
// flight-ring wraparound, and tsc calibration sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/flight.h"
#include "obs/histogram.h"
#include "obs/obs.h"
#include "obs/tsc.h"

namespace {

namespace obs = pto::obs;

// ---------------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------------

TEST(Histogram, LinearRegionIsExact) {
  for (std::uint64_t v = 0; v < obs::kHistSub; ++v) {
    EXPECT_EQ(obs::hist_bucket_index(v), v);
    EXPECT_EQ(obs::hist_bucket_lower(static_cast<unsigned>(v)), v);
    EXPECT_EQ(obs::hist_bucket_width(static_cast<unsigned>(v)), 1u);
  }
}

TEST(Histogram, BucketBoundariesRoundTrip) {
  // Every bucket reachable from a 48-bit value: its lower edge maps back to
  // it, its last value maps to it, and one past maps to the next bucket.
  const unsigned last = obs::hist_bucket_index(1ull << 48);
  for (unsigned idx = 0; idx <= last; ++idx) {
    const std::uint64_t lo = obs::hist_bucket_lower(idx);
    const std::uint64_t w = obs::hist_bucket_width(idx);
    EXPECT_EQ(obs::hist_bucket_index(lo), idx) << "lower edge of " << idx;
    EXPECT_EQ(obs::hist_bucket_index(lo + w - 1), idx) << "upper edge of "
                                                       << idx;
    EXPECT_EQ(obs::hist_bucket_index(lo + w), idx + 1) << "past " << idx;
  }
}

TEST(Histogram, IndexIsMonotone) {
  pto::SplitMix64 rng(1);
  std::uint64_t prev_v = 0;
  unsigned prev_idx = obs::hist_bucket_index(0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v =
        prev_v + 1 + rng.next_below(1 + prev_v / 8);  // growing strides
    const unsigned idx = obs::hist_bucket_index(v);
    EXPECT_GE(idx, prev_idx) << "v=" << v;
    EXPECT_LT(idx, obs::kHistBuckets);
    prev_v = v;
    prev_idx = idx;
    if (v > (1ull << 62)) break;
  }
}

TEST(Histogram, ExtremesStayInRange) {
  EXPECT_LT(obs::hist_bucket_index(~0ull), obs::kHistBuckets);
  EXPECT_EQ(obs::hist_bucket_index(0), 0u);
}

// ---------------------------------------------------------------------------
// Quantiles vs a sorted-vector oracle
// ---------------------------------------------------------------------------

std::uint64_t oracle_quantile(std::vector<std::uint64_t> sorted, double q) {
  // Same rank convention as Histogram::quantile: ceil(q*n), 1-based.
  const auto n = static_cast<double>(sorted.size());
  std::uint64_t rank = static_cast<std::uint64_t>(q * n + 0.9999999);
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TEST(Histogram, QuantileWithinOneBucketOfOracle) {
  pto::SplitMix64 rng(7);
  obs::Histogram h;
  std::vector<std::uint64_t> vals;
  // Heavy-tailed mix spanning several tiers, like real op latencies.
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t v = 50 + rng.next_below(400);         // body
    if (rng.next_below(100) < 9) v = 2000 + rng.next_below(30000);  // tail
    if (rng.next_below(1000) < 3) v = 1000000 + rng.next_below(9000000);
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::uint64_t exact = oracle_quantile(vals, q);
    const std::uint64_t est = h.quantile(q);
    const std::uint64_t tol =
        obs::hist_bucket_width(obs::hist_bucket_index(exact));
    EXPECT_LE(est > exact ? est - exact : exact - est, tol)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
  EXPECT_EQ(h.total(), vals.size());
  EXPECT_EQ(h.max_value(), vals.back());
}

TEST(Histogram, EmptyAndSingleton) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.summarize().samples, 0u);
  h.record(17);
  for (double q : {0.0, 0.5, 0.999, 1.0}) EXPECT_EQ(h.quantile(q), 17u);
  const obs::HistSummary s = h.summarize();
  EXPECT_EQ(s.samples, 1u);
  EXPECT_EQ(s.p50, 17u);
  EXPECT_EQ(s.max, 17u);
}

TEST(Histogram, QuantileNeverExceedsObservedMax) {
  // A value in the lower half of a wide bucket: the bucket midpoint lies
  // above it, so an unclamped quantile would report p50 > max (the service
  // open-loop latency stream hit exactly this in multi-ms buckets).
  obs::Histogram h;
  constexpr std::uint64_t kV = 4036431;  // bucket width 131072 at this tier
  h.record(kV);
  for (double q : {0.5, 0.99, 0.999}) EXPECT_LE(h.quantile(q), kV);
  const obs::HistSummary s = h.summarize();
  EXPECT_LE(s.p999, s.max);
  EXPECT_EQ(s.max, kV);

  // Denser case: many samples, every quantile bounded by the global max.
  obs::Histogram d;
  pto::SplitMix64 rng(99);
  std::uint64_t max = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_below(1u << 24);
    max = v > max ? v : max;
    d.record(v);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999, 1.0}) EXPECT_LE(d.quantile(q), max);
}

// ---------------------------------------------------------------------------
// Merge algebra
// ---------------------------------------------------------------------------

void fill(obs::Histogram& h, std::uint64_t seed, int n) {
  pto::SplitMix64 rng(seed);
  for (int i = 0; i < n; ++i) h.record(rng.next_below(1u << 20));
}

bool same(const obs::Histogram& a, const obs::Histogram& b) {
  if (a.total() != b.total() || a.max_value() != b.max_value()) return false;
  for (unsigned i = 0; i < obs::kHistBuckets; ++i) {
    if (a.bucket_count(i) != b.bucket_count(i)) return false;
  }
  return true;
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  obs::Histogram a, b, c;
  fill(a, 11, 1000);
  fill(b, 22, 3000);
  fill(c, 33, 500);

  obs::Histogram ab_c;  // (a+b)+c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  obs::Histogram a_bc;  // a+(b+c)
  {
    obs::Histogram bc;
    bc.merge(b);
    bc.merge(c);
    a_bc.merge(a);
    a_bc.merge(bc);
  }
  obs::Histogram cba;  // c+b+a
  cba.merge(c);
  cba.merge(b);
  cba.merge(a);
  EXPECT_TRUE(same(ab_c, a_bc));
  EXPECT_TRUE(same(ab_c, cba));

  // Merged == recorded-together (the layout is a pure function of the value).
  obs::Histogram direct;
  fill(direct, 11, 1000);
  fill(direct, 22, 3000);
  fill(direct, 33, 500);
  EXPECT_TRUE(same(ab_c, direct));
}

// ---------------------------------------------------------------------------
// Latency-site pipeline (intern / record / merge / reset)
// ---------------------------------------------------------------------------

TEST(LatencySites, RecordMergeResetAcrossThreads) {
  obs::set_hist_on(true);
  obs::reset_latency();
  obs::LatencySite* site = obs::intern_latency_site("test_obs.site_a");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(obs::intern_latency_site("test_obs.site_a"), site)
      << "intern must be idempotent";

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([site, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Odd samples pretend the op fell back.
        obs::record_latency(site, i % 2 == 1, 100 + static_cast<unsigned>(t));
      }
    });
  }
  for (auto& th : ts) th.join();

  std::vector<obs::LatencySiteSummary> sites;
  const obs::MergedLatency m = obs::merged_latency(&sites);
  EXPECT_EQ(m.all.samples, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(m.fast.samples, m.all.samples / 2);
  EXPECT_EQ(m.fallback.samples, m.all.samples / 2);
  EXPECT_GT(m.all.p50, 0u);
  EXPECT_GE(m.all.p99, m.all.p50);
  ASSERT_FALSE(sites.empty());
  bool found = false;
  for (const auto& s : sites) {
    if (s.site == "test_obs.site_a") {
      found = true;
      EXPECT_EQ(s.fast.samples + s.fallback.samples, m.all.samples);
    }
  }
  EXPECT_TRUE(found);

  obs::reset_latency();
  const obs::MergedLatency empty = obs::merged_latency(nullptr);
  EXPECT_EQ(empty.all.samples, 0u);
  obs::set_hist_on(false);
}

TEST(LatencySites, OpTimerClassifiesFallback) {
  obs::set_hist_on(true);
  obs::reset_latency();
  obs::LatencySite* site = obs::intern_latency_site("test_obs.optimer");
  {
    obs::OpTimer t(site);  // no fallback -> fast
  }
  {
    obs::OpTimer t(site);
    obs::note_fallback();
  }
  const obs::MergedLatency m = obs::merged_latency(nullptr);
  EXPECT_EQ(m.fast.samples, 1u);
  EXPECT_EQ(m.fallback.samples, 1u);
  obs::reset_latency();
  obs::set_hist_on(false);
}

// ---------------------------------------------------------------------------
// Flight ring
// ---------------------------------------------------------------------------

TEST(FlightRing, CapacityRoundsUpToPow2Min64) {
  EXPECT_EQ(obs::FlightRing(1).capacity(), 64u);
  EXPECT_EQ(obs::FlightRing(64).capacity(), 64u);
  EXPECT_EQ(obs::FlightRing(65).capacity(), 128u);
  EXPECT_EQ(obs::FlightRing(1000).capacity(), 1024u);
}

TEST(FlightRing, WraparoundKeepsNewestInOrder) {
  obs::FlightRing ring(64);
  ASSERT_EQ(ring.capacity(), 64u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ring.push(/*tsc=*/i, /*site=*/static_cast<std::uint16_t>(i & 0xffff),
              /*event=*/obs::kFlightAttempt,
              /*arg=*/static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(ring.total_recorded(), 1000u);
  ASSERT_EQ(ring.size(), 64u);
  for (std::uint32_t i = 0; i < ring.size(); ++i) {
    const obs::FlightRec& r = ring.at(i);
    const std::uint64_t want = 1000 - 64 + i;  // oldest surviving first
    EXPECT_EQ(r.tsc, want);
    EXPECT_EQ(r.arg, static_cast<std::uint32_t>(want));
    EXPECT_EQ(r.event, obs::kFlightAttempt);
  }
}

TEST(FlightRing, PartialFillReturnsAll) {
  obs::FlightRing ring(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.push(i, 0, obs::kFlightCommit, 0);
  }
  ASSERT_EQ(ring.size(), 10u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(ring.at(i).tsc, i);
}

// ---------------------------------------------------------------------------
// TSC calibration
// ---------------------------------------------------------------------------

TEST(Tsc, CalibrationIsSane) {
  EXPECT_GT(obs::ticks_per_sec(), 0u);
  EXPECT_EQ(obs::ticks_to_ns(0), 0u);
  // One second of ticks converts to ~1e9 ns (exact on the fallback clock,
  // within calibration error on rdtsc).
  const std::uint64_t ns = obs::ticks_to_ns(obs::ticks_per_sec());
  EXPECT_GT(ns, 900000000u);
  EXPECT_LT(ns, 1100000000u);
}

TEST(Tsc, ElapsedTicksConvertPlausibly) {
  const std::uint64_t t0 = obs::now_ticks();
  const std::uint64_t w0 = obs::steady_ns();
  while (obs::steady_ns() - w0 < 2000000) {  // spin 2 ms
  }
  const std::uint64_t dt_ns = obs::ticks_to_ns(obs::now_ticks() - t0);
  EXPECT_GT(dt_ns, 1000000u);    // > 1 ms
  EXPECT_LT(dt_ns, 500000000u);  // < 0.5 s
}

}  // namespace
