// Multi-word CAS substrate: sequential semantics, helping under concurrency,
// descriptor recycling, and equivalence of the PTO-accelerated paths.
#include <gtest/gtest.h>

#include <tuple>

#include "kcas/kcas.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "reclaim/epoch.h"
#include "sim/sim.h"

namespace {

using pto::Atom;
using pto::EpochDomain;
using pto::SimPlatform;
namespace kc = pto::kcas;

/// Values stored in kcas words must keep their low 2 bits clear.
constexpr std::uint64_t enc(std::uint64_t v) { return v << 2; }

template <class P>
struct Fixture {
  EpochDomain<P> dom;
  kc::Word<P> a, b, c;
  Fixture() {
    a.init(enc(1));
    b.init(enc(2));
    c.init(enc(3));
  }
};

TEST(Kcas, DcasSequentialSemantics) {
  Fixture<SimPlatform> f;
  kc::Ctx<SimPlatform> ctx(f.dom);
  typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);

  EXPECT_TRUE(kc::dcas<SimPlatform>(ctx, f.a, enc(1), enc(10), f.b, enc(2),
                                    enc(20)));
  EXPECT_EQ(kc::read(ctx, f.a), enc(10));
  EXPECT_EQ(kc::read(ctx, f.b), enc(20));

  // Mismatch on the second word: nothing changes.
  EXPECT_FALSE(kc::dcas<SimPlatform>(ctx, f.a, enc(10), enc(11), f.b, enc(999),
                                     enc(21)));
  EXPECT_EQ(kc::read(ctx, f.a), enc(10));
  EXPECT_EQ(kc::read(ctx, f.b), enc(20));
}

TEST(Kcas, DcssSequentialSemantics) {
  Fixture<SimPlatform> f;
  kc::Ctx<SimPlatform> ctx(f.dom);
  typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);

  // Control matches: swap happens.
  EXPECT_TRUE(kc::dcss<SimPlatform>(ctx, f.a, enc(1), f.b, enc(2), enc(22)));
  EXPECT_EQ(kc::read(ctx, f.b), enc(22));
  EXPECT_EQ(kc::read(ctx, f.a), enc(1));  // control untouched

  // Control mismatch: data restored.
  EXPECT_FALSE(kc::dcss<SimPlatform>(ctx, f.a, enc(999), f.b, enc(22),
                                     enc(23)));
  EXPECT_EQ(kc::read(ctx, f.b), enc(22));

  // Data mismatch: fails.
  EXPECT_FALSE(kc::dcss<SimPlatform>(ctx, f.a, enc(1), f.b, enc(999),
                                     enc(23)));
  EXPECT_EQ(kc::read(ctx, f.b), enc(22));
}

TEST(Kcas, McasThreeWords) {
  Fixture<SimPlatform> f;
  kc::Ctx<SimPlatform> ctx(f.dom);
  typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);

  kc::Entry<SimPlatform> e[3] = {{&f.a, enc(1), enc(4)},
                                 {&f.b, enc(2), enc(5)},
                                 {&f.c, enc(3), enc(6)}};
  EXPECT_TRUE(kc::mcas<SimPlatform>(ctx, e, 3));
  EXPECT_EQ(kc::read(ctx, f.a), enc(4));
  EXPECT_EQ(kc::read(ctx, f.b), enc(5));
  EXPECT_EQ(kc::read(ctx, f.c), enc(6));
}

class KcasConcurrent
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

// N threads each perform `iters` successful double-word increments on (a,b).
// Atomicity of the DCAS means a == b at every point; the final sum counts
// every success exactly once.
TEST_P(KcasConcurrent, AtomicPairedIncrements) {
  auto [threads, seed, use_pto] = GetParam();
  Fixture<SimPlatform> f;
  f.a.init(enc(0));
  f.b.init(enc(0));
  pto::sim::Config cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  const int iters = 150;

  auto res = pto::sim::run(static_cast<unsigned>(threads), cfg,
                           [&](unsigned) {
    kc::Ctx<SimPlatform> ctx(f.dom);
    for (int i = 0; i < iters;) {
      typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
      std::uint64_t va = kc::read(ctx, f.a);
      std::uint64_t vb = kc::read(ctx, f.b);
      if (va != vb) continue;  // raced between the two reads; retry
      bool ok = use_pto
                    ? kc::pto_dcas<SimPlatform>(ctx, f.a, va, va + enc(1),
                                                f.b, vb, vb + enc(1))
                    : kc::dcas<SimPlatform>(ctx, f.a, va, va + enc(1), f.b,
                                            vb, vb + enc(1));
      if (ok) ++i;
    }
  });

  EXPECT_EQ(res.uaf_count, 0u);
  kc::Ctx<SimPlatform> ctx(f.dom);
  typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
  EXPECT_EQ(kc::read(ctx, f.a),
            enc(static_cast<std::uint64_t>(threads) * iters));
  EXPECT_EQ(kc::read(ctx, f.b),
            enc(static_cast<std::uint64_t>(threads) * iters));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KcasConcurrent,
    ::testing::Combine(::testing::Values(2, 4, 8), ::testing::Values(1, 2, 3),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string("t") + std::to_string(std::get<0>(info.param)) +
             "_s" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_pto" : "_sw");
    });

TEST(Kcas, DcssGuardsAgainstControlChange) {
  // Concurrently flip the control word; dcss success must imply the control
  // held its expected value at the linearization point.
  Fixture<SimPlatform> f;
  f.a.init(enc(0));  // control: 0 = allowed, 1 = blocked
  f.b.init(enc(0));  // data: successful dcss increments
  Atom<SimPlatform, std::uint64_t> blocked_increments;
  blocked_increments.init(0);

  pto::sim::Config cfg;
  cfg.seed = 5;
  pto::sim::run(4, cfg, [&](unsigned tid) {
    kc::Ctx<SimPlatform> ctx(f.dom);
    if (tid == 0) {
      // Toggler: flip control between allowed and blocked.
      for (int i = 0; i < 200; ++i) {
        typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
        std::uint64_t cur = kc::read(ctx, f.a);
        kc::dcss<SimPlatform>(ctx, f.b, kc::read(ctx, f.b), f.a, cur,
                              cur ^ enc(1));
      }
    } else {
      for (int i = 0; i < 100; ++i) {
        typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
        std::uint64_t d = kc::read(ctx, f.b);
        if (kc::dcss<SimPlatform>(ctx, f.a, enc(0), f.b, d, d + enc(1))) {
          // success implies control was 'allowed' at that instant
        } else if (kc::read(ctx, f.a) == enc(1)) {
          blocked_increments.fetch_add(1);
        }
      }
    }
  });
  // The test passes if it terminates with consistent clean words.
  kc::Ctx<SimPlatform> ctx(f.dom);
  typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
  EXPECT_TRUE(kc::is_clean(kc::read(ctx, f.a)));
  EXPECT_TRUE(kc::is_clean(kc::read(ctx, f.b)));
}

TEST(Kcas, DescriptorsAreRecycled) {
  // Steady-state DCAS traffic must not keep allocating descriptors.
  Fixture<SimPlatform> f;
  pto::sim::Config cfg;
  auto res = pto::sim::run(1, cfg, [&](unsigned) {
    kc::Ctx<SimPlatform> ctx(f.dom);
    std::uint64_t va = enc(1), vb = enc(2);
    for (int i = 0; i < 2000; ++i) {
      typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
      ASSERT_TRUE(kc::dcas<SimPlatform>(ctx, f.a, va, va + enc(1), f.b, vb,
                                        vb + enc(1)));
      va += enc(1);
      vb += enc(1);
    }
  });
  // 2000 DCAS = 2000 mcas descriptors + >=4000 rdcss descriptors if never
  // recycled; with epoch recycling the allocation count stays tiny.
  EXPECT_LT(res.totals().allocs, 400u);
}

TEST(Kcas, PtoFastPathAvoidsCasTraffic) {
  Fixture<SimPlatform> f;
  pto::PrefixStats st;
  auto res = pto::sim::run(1, {}, [&](unsigned) {
    kc::Ctx<SimPlatform> ctx(f.dom);
    std::uint64_t va = enc(1), vb = enc(2);
    for (int i = 0; i < 500; ++i) {
      typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
      ASSERT_TRUE(kc::pto_dcas<SimPlatform>(ctx, f.a, va, va + enc(1), f.b,
                                            vb, vb + enc(1),
                                            pto::PrefixPolicy(4), &st));
      va += enc(1);
      vb += enc(1);
    }
  });
  EXPECT_EQ(st.commits, 500u);
  EXPECT_EQ(st.fallbacks, 0u);
  // Uncontended PTO DCAS performs no CAS at all (the few remaining CAS ops
  // come from epoch registration/advance, not from the DCAS path).
  EXPECT_LE(res.totals().cas_ops, 64u);
  EXPECT_EQ(res.totals().allocs, 0u);
}

TEST(Kcas, McasFourWordsAnyOrder) {
  // Entries are sorted internally; caller order must not matter.
  EpochDomain<SimPlatform> dom;
  kc::Word<SimPlatform> w[4];
  for (int i = 0; i < 4; ++i) w[i].init(enc(static_cast<unsigned>(i)));
  kc::Ctx<SimPlatform> ctx(dom);
  typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
  kc::Entry<SimPlatform> e[4] = {{&w[3], enc(3), enc(13)},
                                 {&w[0], enc(0), enc(10)},
                                 {&w[2], enc(2), enc(12)},
                                 {&w[1], enc(1), enc(11)}};
  EXPECT_TRUE(kc::mcas<SimPlatform>(ctx, e, 4));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(kc::read(ctx, w[i]), enc(static_cast<unsigned>(10 + i)));
  }
  // One mismatch anywhere fails the whole MCAS and restores everything.
  kc::Entry<SimPlatform> e2[4] = {{&w[0], enc(10), enc(20)},
                                  {&w[1], enc(999), enc(21)},
                                  {&w[2], enc(12), enc(22)},
                                  {&w[3], enc(13), enc(23)}};
  EXPECT_FALSE(kc::mcas<SimPlatform>(ctx, e2, 4));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(kc::read(ctx, w[i]), enc(static_cast<unsigned>(10 + i)));
  }
}

TEST(Kcas, ConcurrentMcasFourWordsConsistent) {
  // Four words advanced in lockstep by 8 threads via 4-word MCAS: all four
  // must always agree at quiescence (atomicity across the whole set).
  EpochDomain<SimPlatform> dom;
  kc::Word<SimPlatform> w[4];
  for (auto& x : w) x.init(enc(0));
  pto::sim::Config cfg;
  cfg.seed = 6;
  const int iters = 60;
  auto res = pto::sim::run(8, cfg, [&](unsigned) {
    kc::Ctx<SimPlatform> ctx(dom);
    for (int i = 0; i < iters;) {
      typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
      std::uint64_t v = kc::read(ctx, w[0]);
      kc::Entry<SimPlatform> e[4];
      bool consistent = true;
      for (int j = 0; j < 4; ++j) {
        std::uint64_t vj = kc::read(ctx, w[j]);
        consistent &= (vj == v);
        e[j] = {&w[j], v, v + enc(1)};
      }
      if (!consistent) continue;
      if (kc::mcas<SimPlatform>(ctx, e, 4)) ++i;
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  kc::Ctx<SimPlatform> ctx(dom);
  typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
  for (auto& x : w) EXPECT_EQ(kc::read(ctx, x), enc(8 * iters));
}

TEST(Kcas, PtoFallsBackUnderFailureInjection) {
  Fixture<SimPlatform> f;
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  pto::PrefixStats st;
  pto::sim::run(1, cfg, [&](unsigned) {
    kc::Ctx<SimPlatform> ctx(f.dom);
    typename EpochDomain<SimPlatform>::Guard g(ctx.epoch);
    EXPECT_TRUE(kc::pto_dcas<SimPlatform>(ctx, f.a, enc(1), enc(5), f.b,
                                          enc(2), enc(6),
                                          pto::PrefixPolicy(4), &st));
    EXPECT_EQ(kc::read(ctx, f.a), enc(5));
    EXPECT_EQ(kc::read(ctx, f.b), enc(6));
  });
  EXPECT_EQ(st.commits, 0u);
  EXPECT_EQ(st.fallbacks, 1u);
}

TEST(Kcas, NativePlatformDcas) {
  Fixture<pto::NativePlatform> f;
  kc::Ctx<pto::NativePlatform> ctx(f.dom);
  typename EpochDomain<pto::NativePlatform>::Guard g(ctx.epoch);
  EXPECT_TRUE(kc::pto_dcas<pto::NativePlatform>(ctx, f.a, enc(1), enc(7), f.b,
                                                enc(2), enc(8)));
  EXPECT_EQ(kc::read(ctx, f.a), enc(7));
  EXPECT_EQ(kc::read(ctx, f.b), enc(8));
}

}  // namespace
