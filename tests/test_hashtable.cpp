// Freezable-set hash table: model checks, resize behaviour, concurrent
// consistency for CoW / PTO / PTO+Inplace, and the in-place counter protocol.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "ds/hashtable/fset_hash.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "set_test_util.h"
#include "sim/sim.h"

namespace {

using pto::FSetHash;
using pto::SimPlatform;

template <class P>
using Mode = typename FSetHash<P>::Mode;

const char* mode_name(Mode<SimPlatform> m) {
  switch (m) {
    case Mode<SimPlatform>::kLockfree: return "lf";
    case Mode<SimPlatform>::kPto: return "pto";
    default: return "inplace";
  }
}

template <class P>
struct HashAdapter {
  using Mode = typename FSetHash<P>::Mode;
  using Ctx = typename FSetHash<P>::ThreadCtx;
  FSetHash<P> ds;

  Ctx make_ctx() { return ds.make_ctx(); }
  bool insert(Ctx& c, Mode m, std::int64_t k) { return ds.insert(c, k, m); }
  bool remove(Ctx& c, Mode m, std::int64_t k) { return ds.remove(c, k, m); }
  bool contains(Ctx& c, Mode m, std::int64_t k) {
    return ds.contains(c, k, m);
  }
  bool check_invariants() { return ds.check_invariants(); }
  std::size_t size_slow() { return ds.size_slow(); }
};

class HashSequential : public ::testing::TestWithParam<Mode<SimPlatform>> {};

TEST_P(HashSequential, MatchesStdSet) {
  HashAdapter<SimPlatform> a;
  pto::testutil::sequential_model_check(a, GetParam(), 512, 6000, 31);
  // 512-key range with 40% inserts must have grown the table.
  EXPECT_GT(a.ds.table_len(), FSetHash<SimPlatform>::kInitialBuckets);
}

INSTANTIATE_TEST_SUITE_P(Modes, HashSequential,
                         ::testing::Values(Mode<SimPlatform>::kLockfree,
                                           Mode<SimPlatform>::kPto,
                                           Mode<SimPlatform>::kPtoInplace),
                         [](const auto& i) { return mode_name(i.param); });

class HashConcurrent : public ::testing::TestWithParam<
                           std::tuple<Mode<SimPlatform>, int, int, int>> {};

TEST_P(HashConcurrent, PerKeyConsistency) {
  auto [mode, threads, range, seed] = GetParam();
  HashAdapter<SimPlatform> a;
  pto::testutil::concurrent_consistency(a, mode,
                                        static_cast<unsigned>(threads), range,
                                        400, static_cast<std::uint64_t>(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HashConcurrent,
    ::testing::Combine(::testing::Values(Mode<SimPlatform>::kLockfree,
                                         Mode<SimPlatform>::kPto,
                                         Mode<SimPlatform>::kPtoInplace),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(32, 2048),  // with/without resizes
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(mode_name(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(Hash, CowAndPtoInteroperate) {
  // kLockfree and kPto share the CoW protocol and may mix freely.
  HashAdapter<SimPlatform> a;
  std::vector<std::vector<int>> net(6, std::vector<int>(128, 0));
  pto::sim::Config cfg;
  cfg.seed = 5;
  auto res = pto::sim::run(6, cfg, [&](unsigned tid) {
    auto ctx = a.make_ctx();
    auto m = tid % 2 == 0 ? Mode<SimPlatform>::kLockfree
                          : Mode<SimPlatform>::kPto;
    for (int i = 0; i < 400; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 128);
      if (pto::sim::rnd() % 2 == 0) {
        if (a.insert(ctx, m, k)) ++net[tid][static_cast<std::size_t>(k)];
      } else {
        if (a.remove(ctx, m, k)) --net[tid][static_cast<std::size_t>(k)];
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  auto ctx = a.make_ctx();
  for (int k = 0; k < 128; ++k) {
    int total = 0;
    for (auto& t : net) total += t[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(a.contains(ctx, Mode<SimPlatform>::kLockfree, k), total == 1);
  }
  EXPECT_TRUE(a.check_invariants());
}

TEST(Hash, InplaceEliminatesAllocation) {
  // Steady-state in-place updates (no resizes: small key range, bucket never
  // crosses the threshold) must allocate nothing; CoW allocates per update.
  auto run_mode = [](Mode<SimPlatform> m) {
    HashAdapter<SimPlatform> a;
    auto res = pto::sim::run(1, {}, [&](unsigned) {
      auto ctx = a.make_ctx();
      for (int i = 0; i < 500; ++i) {
        a.insert(ctx, m, i % 8);
        a.remove(ctx, m, i % 8);
      }
    });
    return res.totals().allocs;
  };
  auto cow_allocs = run_mode(Mode<SimPlatform>::kLockfree);
  auto inplace_allocs = run_mode(Mode<SimPlatform>::kPtoInplace);
  EXPECT_GT(cow_allocs, 900u);      // ~one per update
  EXPECT_LT(inplace_allocs, 64u);   // only warm-up buckets
}

TEST(Hash, PtoLookupElidesEpoch) {
  // Transactional lookups skip the epoch reservation stores and fences.
  HashAdapter<SimPlatform> a;
  {
    auto ctx = a.make_ctx();
    for (int k = 0; k < 64; ++k) {
      a.insert(ctx, Mode<SimPlatform>::kLockfree, k);
    }
  }
  auto count_fences = [&](Mode<SimPlatform> m) {
    auto res = pto::sim::run(1, {}, [&](unsigned) {
      auto ctx = a.make_ctx();
      for (int i = 0; i < 500; ++i) {
        a.contains(ctx, m, i % 128);
      }
    });
    return res.totals().fences;
  };
  auto lf_fences = count_fences(Mode<SimPlatform>::kLockfree);
  auto pto_fences = count_fences(Mode<SimPlatform>::kPto);
  EXPECT_GT(lf_fences, 400u);  // one reservation fence per lookup
  EXPECT_LT(pto_fences, 64u);
}

TEST(Hash, InplaceFailureInjectionFallsBackToCow) {
  HashAdapter<SimPlatform> a;
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  pto::sim::run(2, cfg, [&](unsigned) {
    auto ctx = a.make_ctx();
    for (int i = 0; i < 200; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 64);
      if (pto::sim::rnd() % 2 == 0) {
        a.insert(ctx, Mode<SimPlatform>::kPtoInplace, k);
      } else {
        a.remove(ctx, Mode<SimPlatform>::kPtoInplace, k);
      }
      // Lookups must still be correct while every transaction dies.
      (void)a.contains(ctx, Mode<SimPlatform>::kPtoInplace, k);
    }
  });
  EXPECT_TRUE(a.check_invariants());
}

TEST(Hash, NativePlatformAllModes) {
  for (auto m : {Mode<pto::NativePlatform>::kLockfree,
                 Mode<pto::NativePlatform>::kPto,
                 Mode<pto::NativePlatform>::kPtoInplace}) {
    HashAdapter<pto::NativePlatform> a;
    pto::testutil::sequential_model_check(a, m, 256, 2500,
                                          static_cast<int>(m) + 50);
  }
}

}  // namespace
