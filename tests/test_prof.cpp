// pto::telemetry::prof — observation-only contract (simulated cycles are
// byte-identical with profiling on/off), conflict-matrix consistency against
// the telemetry registry, and the latency-class cycle ledger explaining the
// PTO-vs-baseline virtual-cycle delta.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/defs.h"
#include "core/prefix.h"
#include "ds/bst/ellen_bst.h"
#include "ds/skiplist/skiplist.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"
#include "sim_util.h"
#include "telemetry/prof.h"
#include "telemetry/registry.h"

namespace {

using pto::Atom;
using pto::CacheAligned;
using pto::EllenBST;
using pto::SimPlatform;
using pto::SkipList;
namespace sim = pto::sim;
namespace telemetry = pto::telemetry;
namespace prof = pto::telemetry::prof;

/// RAII: enable profiling for one test, restore quiet state afterwards.
struct ProfOn {
  ProfOn() {
    prof::set_enabled(true);
    prof::reset();
  }
  ~ProfOn() {
    prof::reset();
    prof::set_enabled(false);
  }
};

// ---------------------------------------------------------------------------
// Observation-only: the golden rich workload from test_sim.cpp, byte-for-byte
// the same pinned constants with PTO_PROF recording enabled. If these move,
// a profiling hook charged virtual cycles.
// ---------------------------------------------------------------------------

TEST(Prof, DoesNotPerturbGoldenWorkload) {
  ProfOn guard;
  sim::reset_memory();
  sim::Config cfg;
  cfg.seed = 2026;
  cfg.htm.max_duration = 5'000;
  std::vector<CacheAligned<Atom<SimPlatform, std::uint64_t>>> cells(64);
  for (auto& c : cells) c.value.init(0);
  pto::testutil::SimBarrier bar(4);
  auto res = sim::run(4, cfg, [&](unsigned tid) {
    for (int i = 0; i < 300; ++i) {
      auto a = static_cast<unsigned>(sim::rnd() % cells.size());
      auto b = static_cast<unsigned>(sim::rnd() % cells.size());
      if (i % 7 == 0) {
        auto* n = SimPlatform::make<Atom<SimPlatform, std::uint64_t>>();
        n->init(i);
        n->store(n->load(std::memory_order_relaxed) + tid,
                 std::memory_order_relaxed);
        SimPlatform::destroy(n);
      }
      pto::prefix<SimPlatform>(
          2,
          [&] {
            auto v = cells[a].value.load(std::memory_order_relaxed);
            cells[b].value.store(v + tid + 1, std::memory_order_relaxed);
          },
          [&] {
            cells[b].value.fetch_add(tid + 1, std::memory_order_seq_cst);
          });
      if (i == 150) bar.wait();
      sim::op_done();
    }
  });
  auto t = res.totals();
  EXPECT_EQ(res.makespan(), 48945u);
  EXPECT_EQ(t.loads, 1469u);
  EXPECT_EQ(t.stores, 1420u);
  EXPECT_EQ(t.cas_ops, 0u);
  EXPECT_EQ(t.rmws, 16u);
  EXPECT_EQ(t.tx_commits, 1192u);
  EXPECT_EQ(t.total_aborts(), 69u);
  EXPECT_EQ(t.allocs, 172u);
  EXPECT_EQ(t.frees, 172u);
  EXPECT_EQ(t.ops_completed, 1200u);
  EXPECT_EQ(res.uaf_count, 0u);
}

// ---------------------------------------------------------------------------
// Observation-only, site-rich path: the same telemetry-sited workload run
// with profiling off and then on must produce identical simulated results.
// ---------------------------------------------------------------------------

TEST(Prof, OnOffSimulationIdentical) {
  std::vector<CacheAligned<Atom<SimPlatform, std::uint64_t>>> cells(32);
  auto run_once = [&] {
    sim::reset_memory();
    for (auto& c : cells) c.value.init(0);
    sim::Config cfg;
    cfg.seed = 99;
    return sim::run(4, cfg, [&](unsigned tid) {
      for (int i = 0; i < 400; ++i) {
        auto a = static_cast<unsigned>(sim::rnd() % cells.size());
        auto b = static_cast<unsigned>(sim::rnd() % cells.size());
        pto::prefix<SimPlatform>(
            2,
            [&] {
              auto v = cells[a].value.load(std::memory_order_relaxed);
              cells[b].value.store(v + 1, std::memory_order_seq_cst);
            },
            [&] { cells[b].value.fetch_add(tid + 1, std::memory_order_seq_cst); },
            pto::StatsHandle(PTO_TELEMETRY_SITE("proftest.op")));
        sim::op_done();
      }
    });
  };
  prof::set_enabled(false);
  auto off = run_once();
  {
    ProfOn guard;
    auto on = run_once();
    EXPECT_EQ(off.makespan(), on.makespan());
    EXPECT_EQ(off.clocks, on.clocks);
    auto to = off.totals();
    auto tn = on.totals();
    EXPECT_EQ(to.loads, tn.loads);
    EXPECT_EQ(to.stores, tn.stores);
    EXPECT_EQ(to.tx_commits, tn.tx_commits);
    EXPECT_EQ(to.total_aborts(), tn.total_aborts());
    EXPECT_EQ(to.fences_elided, tn.fences_elided);
    // And the profiler did actually observe the sited run.
    auto scopes = prof::snapshot();
    ASSERT_FALSE(scopes.empty());
    bool saw_site = false;
    for (const auto& sc : scopes) {
      for (const auto& l : sc.sites) {
        if (l.site == "proftest.op") {
          saw_site = true;
          EXPECT_GT(l.fast.count + l.fallback.count, 0u);
        }
      }
    }
    EXPECT_TRUE(saw_site);
  }
}

// ---------------------------------------------------------------------------
// Conflict matrix vs registry: on a contended fig3-style set workload at
// 8 vthreads, the per-victim-site doomed-abort totals in the matrix must
// equal the registry's conflict-abort counters site by site — the two views
// are causally the same events (one doom() = one recorded CONFLICT abort).
// ---------------------------------------------------------------------------

TEST(Prof, ConflictMatrixMatchesRegistryCounters) {
  ProfOn guard;
  telemetry::set_enabled(true);
  telemetry::Registry::instance().reset_all();
  sim::reset_memory();

  using Mode = EllenBST<SimPlatform>::Mode;
  constexpr int kRange = 64;
  auto* tree = new EllenBST<SimPlatform>();
  auto* skip = new SkipList<SimPlatform>();
  {
    auto ctx = tree->make_ctx();
    for (int i = 0; i < kRange / 2; ++i) {
      tree->insert(ctx, (i * 7) % kRange, Mode::kLockfree);
    }
  }
  {
    auto ctx = skip->make_ctx();
    for (int i = 0; i < kRange / 2; ++i) {
      skip->insert_lf(ctx, (i * 5) % kRange);
    }
  }

  sim::Config cfg;
  cfg.seed = 2027;
  sim::run(8, cfg, [&](unsigned tid) {
    if (tid % 2 == 0) {
      auto ctx = tree->make_ctx();
      for (int i = 0; i < 500; ++i) {
        auto k = static_cast<std::int64_t>(sim::rnd() % kRange);
        if (sim::rnd() % 2 == 0) {
          tree->insert(ctx, k, Mode::kPto12);
        } else {
          tree->remove(ctx, k, Mode::kPto12);
        }
        sim::op_done();
      }
    } else {
      auto ctx = skip->make_ctx();
      for (int i = 0; i < 500; ++i) {
        auto k = static_cast<std::int64_t>(sim::rnd() % kRange);
        if (sim::rnd() % 2 == 0) {
          skip->insert_pto(ctx, k);
        } else {
          skip->remove_pto(ctx, k);
        }
        sim::op_done();
      }
    }
  });

  auto scopes = prof::snapshot();
  const prof::ScopeSnapshot* sc = nullptr;
  for (const auto& s : scopes) {
    if (s.label.empty()) sc = &s;
  }
  ASSERT_NE(sc, nullptr);

  std::map<std::string, std::uint64_t> victim_rows;
  std::uint64_t matrix_total = 0;
  for (const auto& cell : sc->matrix) {
    victim_rows[cell.victim] += cell.count;
    matrix_total += cell.count;
    EXPECT_GT(cell.count, 0u);
  }
  // The workload must actually conflict, or this test checks nothing.
  ASSERT_GT(matrix_total, 0u);
  // Every doomed transaction belonged to a sited prefix: site identity
  // flowed through StatsHandle with no per-DS plumbing.
  EXPECT_EQ(victim_rows.count("(none)"), 0u);

  std::uint64_t registry_total = 0;
  for (auto* site : telemetry::Registry::instance().sites()) {
    const std::uint64_t conflicts =
        site->snapshot().aborts[pto::TX_ABORT_CONFLICT];
    registry_total += conflicts;
    auto it = victim_rows.find(site->name());
    const std::uint64_t row = it == victim_rows.end() ? 0 : it->second;
    EXPECT_EQ(row, conflicts) << "site " << site->name();
  }
  EXPECT_EQ(matrix_total, registry_total);

  // Hot-line table covers the same events.
  std::uint64_t line_total = 0;
  for (const auto& h : sc->hot_lines) line_total += h.aborts;
  EXPECT_EQ(line_total, matrix_total);

  delete tree;
  delete skip;
  sim::reset_memory();
  telemetry::Registry::instance().reset_all();
  telemetry::set_enabled(false);
}

// ---------------------------------------------------------------------------
// Cycle ledger: on a fixed single-thread workload, the four latency classes
// plus retry waste must account for >= 95% of the virtual-cycle delta
// between a PTO series and its non-PTO baseline.
// ---------------------------------------------------------------------------

TEST(Prof, LedgerAccountsSpeedupDelta) {
  ProfOn guard;
  sim::reset_memory();
  constexpr int kOps = 2048;

  struct Cells {
    Atom<SimPlatform, std::uint64_t> a, b, c;
  };
  Cells cells;
  cells.a.init(1);
  cells.b.init(0);
  cells.c.init(0);

  // The fallback is a deliberately "lock-free-shaped" op: synchronization
  // (fetch_add), a seq_cst publish fence, a double-check re-read, and a
  // descriptor allocation — one instance of each latency class PTO deletes.
  auto slow_op = [&] {
    cells.b.fetch_add(1, std::memory_order_seq_cst);
    cells.c.store(2, std::memory_order_seq_cst);  // store + fence
    (void)cells.a.load(std::memory_order_relaxed);
    (void)cells.a.load(std::memory_order_relaxed);
    (void)cells.a.load(std::memory_order_relaxed);  // validation re-read
    void* p = SimPlatform::alloc_bytes(64);
    SimPlatform::free_bytes(p, 64);
  };

  sim::Config cfg;
  cfg.seed = 7;

  auto pto_res = sim::run(1, cfg, [&](unsigned) {
    auto* site = PTO_TELEMETRY_SITE("profled.op");
    for (int i = 0; i < kOps; ++i) {
      pto::prefix<SimPlatform>(
          1,
          [&] {
            // A periodic explicit abort exercises the retry-waste channel.
            if (i % 16 == 0) SimPlatform::tx_abort<1>();
            auto v = cells.a.load(std::memory_order_relaxed);
            auto cur = cells.b.load(std::memory_order_relaxed);
            cells.b.compare_exchange_strong(cur, cur + v,
                                            std::memory_order_relaxed);
            cells.c.store(2, std::memory_order_seq_cst);  // fence elided
          },
          slow_op, pto::StatsHandle(PTO_TELEMETRY_SITE("profled.op")));
      (void)site;
      sim::op_done();
    }
  });

  auto base_res = sim::run(1, cfg, [&](unsigned) {
    for (int i = 0; i < kOps; ++i) {
      slow_op();
      sim::op_done();
    }
  });

  const double pto_cycles = static_cast<double>(pto_res.clocks[0]);
  const double base_cycles = static_cast<double>(base_res.clocks[0]);
  const double delta = base_cycles - pto_cycles;
  ASSERT_GT(delta, 0.0) << "PTO must beat the baseline on this workload";

  auto scopes = prof::snapshot();
  const prof::SiteLedger* ledger = nullptr;
  for (const auto& sc : scopes) {
    for (const auto& l : sc.sites) {
      if (l.site == "profled.op") ledger = &l;
    }
  }
  ASSERT_NE(ledger, nullptr);

  EXPECT_EQ(ledger->fast.count, static_cast<std::uint64_t>(kOps - kOps / 16));
  EXPECT_EQ(ledger->fallback.count, static_cast<std::uint64_t>(kOps / 16));
  EXPECT_EQ(ledger->aborts[pto::TX_ABORT_EXPLICIT],
            static_cast<std::uint64_t>(kOps / 16));
  // One elided fence per committed fast op; CAS collapse observed throughout.
  EXPECT_EQ(ledger->fence_elided_count, ledger->fast.count);
  EXPECT_GT(ledger->cas_collapsed_cycles, 0u);
  EXPECT_GT(ledger->retry_waste_cycles, 0u);

  prof::SavingsBreakdown sv = prof::derive_savings(*ledger);
  EXPECT_GT(sv.fence_removed, 0.0);
  EXPECT_GT(sv.second_read_collapsed, 0.0);
  EXPECT_GT(sv.store_sync_removed, 0.0);
  EXPECT_GT(sv.alloc_avoided, 0.0);

  // The ledger must explain >= 95% of the measured speedup.
  const double err = sv.explained() > delta ? sv.explained() - delta
                                            : delta - sv.explained();
  EXPECT_LE(err, 0.05 * delta)
      << "explained=" << sv.explained() << " delta=" << delta;
  sim::reset_memory();
}

}  // namespace
