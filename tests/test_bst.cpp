// Ellen et al. BST: model checks and deterministic concurrent consistency
// for the lock-free baseline and all three PTO variants, plus cross-variant
// interoperability (PTO transactions against fallback descriptors) and the
// dummy-descriptor poisoning behaviour.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "ds/bst/ellen_bst.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "set_test_util.h"
#include "sim/sim.h"

namespace {

using pto::EllenBST;
using pto::SimPlatform;

template <class P>
using Mode = typename EllenBST<P>::Mode;

const char* mode_name(Mode<SimPlatform> m) {
  switch (m) {
    case Mode<SimPlatform>::kLockfree: return "lf";
    case Mode<SimPlatform>::kPto1: return "pto1";
    case Mode<SimPlatform>::kPto2: return "pto2";
    default: return "pto12";
  }
}

template <class P>
struct BstAdapter {
  using Mode = typename EllenBST<P>::Mode;
  using Ctx = typename EllenBST<P>::ThreadCtx;
  EllenBST<P> ds;

  Ctx make_ctx() { return ds.make_ctx(); }
  bool insert(Ctx& c, Mode m, std::int64_t k) { return ds.insert(c, k, m); }
  bool remove(Ctx& c, Mode m, std::int64_t k) { return ds.remove(c, k, m); }
  bool contains(Ctx& c, Mode m, std::int64_t k) {
    return ds.contains(c, k, m);
  }
  bool check_invariants() { return ds.check_invariants(); }
  std::size_t size_slow() { return ds.size_slow(); }
};

class BstSequential : public ::testing::TestWithParam<Mode<SimPlatform>> {};

TEST_P(BstSequential, MatchesStdSet) {
  BstAdapter<SimPlatform> a;
  pto::testutil::sequential_model_check(a, GetParam(), 256, 4000, 21);
}

INSTANTIATE_TEST_SUITE_P(Modes, BstSequential,
                         ::testing::Values(Mode<SimPlatform>::kLockfree,
                                           Mode<SimPlatform>::kPto1,
                                           Mode<SimPlatform>::kPto2,
                                           Mode<SimPlatform>::kPto12),
                         [](const auto& i) { return mode_name(i.param); });

class BstConcurrent : public ::testing::TestWithParam<
                          std::tuple<Mode<SimPlatform>, int, int, int>> {};

TEST_P(BstConcurrent, PerKeyConsistency) {
  auto [mode, threads, range, seed] = GetParam();
  BstAdapter<SimPlatform> a;
  pto::testutil::concurrent_consistency(a, mode,
                                        static_cast<unsigned>(threads), range,
                                        400, static_cast<std::uint64_t>(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BstConcurrent,
    ::testing::Combine(::testing::Values(Mode<SimPlatform>::kLockfree,
                                         Mode<SimPlatform>::kPto1,
                                         Mode<SimPlatform>::kPto2,
                                         Mode<SimPlatform>::kPto12),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(16, 512),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(mode_name(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(Bst, AllModesInteroperateOnSharedKeys) {
  // Thread t uses mode t%4; high contention on 32 keys. This exercises PTO
  // transactions racing fallback descriptors, helping, and the dummy mark.
  BstAdapter<SimPlatform> a;
  constexpr int kRange = 32;
  std::vector<std::vector<int>> net(8, std::vector<int>(kRange, 0));
  pto::sim::Config cfg;
  cfg.seed = 77;
  auto res = pto::sim::run(8, cfg, [&](unsigned tid) {
    auto ctx = a.make_ctx();
    auto m = static_cast<Mode<SimPlatform>>(tid % 4);
    for (int i = 0; i < 300; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      if (pto::sim::rnd() % 2 == 0) {
        if (a.insert(ctx, m, k)) ++net[tid][static_cast<std::size_t>(k)];
      } else {
        if (a.remove(ctx, m, k)) --net[tid][static_cast<std::size_t>(k)];
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  auto ctx = a.make_ctx();
  for (int k = 0; k < kRange; ++k) {
    int total = 0;
    for (auto& t : net) total += t[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(a.contains(ctx, Mode<SimPlatform>::kLockfree, k), total == 1)
        << "key " << k;
  }
  EXPECT_TRUE(a.check_invariants());
}

TEST(Bst, Pto1CommitsEliminateDescriptorAllocation) {
  // Single-threaded PTO1: every operation commits; no Info descriptors and
  // no flag CASes should appear.
  BstAdapter<SimPlatform> a;
  pto::sim::RunResult baseline, accelerated;
  {
    BstAdapter<SimPlatform> b;
    baseline = pto::sim::run(1, {}, [&](unsigned) {
      auto ctx = b.make_ctx();
      for (int i = 0; i < 300; ++i) {
        b.insert(ctx, Mode<SimPlatform>::kLockfree, i % 64);
        b.remove(ctx, Mode<SimPlatform>::kLockfree, i % 64);
      }
    });
  }
  accelerated = pto::sim::run(1, {}, [&](unsigned) {
    auto ctx = a.make_ctx();
    for (int i = 0; i < 300; ++i) {
      a.insert(ctx, Mode<SimPlatform>::kPto1, i % 64);
      a.remove(ctx, Mode<SimPlatform>::kPto1, i % 64);
    }
    EXPECT_EQ(ctx.pto1_stats.fallbacks, 0u);
  });
  // LF allocates an Info per update; PTO1 does not (only node shells).
  EXPECT_LT(accelerated.totals().allocs, baseline.totals().allocs);
  // PTO1 issues no CAS itself; the residue comes from epoch bookkeeping.
  EXPECT_LE(accelerated.totals().cas_ops, 64u);
  EXPECT_GT(baseline.totals().cas_ops, 500u);
}

TEST(Bst, Pto1FailureInjectionFallsBackCorrectly) {
  BstAdapter<SimPlatform> a;
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 0.3;  // partial failure: mixed paths
  cfg.seed = 9;
  std::vector<std::vector<int>> net(4, std::vector<int>(64, 0));
  auto res = pto::sim::run(4, cfg, [&](unsigned tid) {
    auto ctx = a.make_ctx();
    for (int i = 0; i < 300; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 64);
      if (pto::sim::rnd() % 2 == 0) {
        if (a.insert(ctx, Mode<SimPlatform>::kPto12, k)) {
          ++net[tid][static_cast<std::size_t>(k)];
        }
      } else {
        if (a.remove(ctx, Mode<SimPlatform>::kPto12, k)) {
          --net[tid][static_cast<std::size_t>(k)];
        }
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  auto ctx = a.make_ctx();
  for (int k = 0; k < 64; ++k) {
    int total = 0;
    for (auto& t : net) total += t[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(a.contains(ctx, Mode<SimPlatform>::kLockfree, k), total == 1);
  }
  EXPECT_TRUE(a.check_invariants());
}

TEST(Bst, NativePlatformAllModes) {
  BstAdapter<pto::NativePlatform> a;
  for (auto m : {Mode<pto::NativePlatform>::kLockfree,
                 Mode<pto::NativePlatform>::kPto1,
                 Mode<pto::NativePlatform>::kPto2,
                 Mode<pto::NativePlatform>::kPto12}) {
    BstAdapter<pto::NativePlatform> b;
    pto::testutil::sequential_model_check(b, m, 128, 1500,
                                          static_cast<int>(m) + 40);
  }
  (void)a;
}

}  // namespace
